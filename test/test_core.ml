module Tool = Spr_core.Tool
module Dynamics = Spr_core.Dynamics
module Profile = Spr_core.Profile
module Rs = Spr_route.Route_state
module Arch = Spr_arch.Arch
module Nl = Spr_netlist.Netlist
module Gen = Spr_netlist.Generator
module Engine = Spr_anneal.Engine

(* Small, quick anneal profile so the suite stays fast. *)
let quick_config ?(seed = 1) n =
  Tool.Config.(
    default |> with_seed seed |> with_validate true
    |> with_anneal
         {
           (Engine.default_config ~n) with
           Engine.moves_per_temp = max 200 (3 * n);
           warmup_moves = 200;
           max_temperatures = 25;
         })

let small_case ?(n_cells = 60) ?(seed = 7) ?(tracks = 20) () =
  let nl = Gen.generate (Gen.default ~n_cells) ~seed in
  let arch = Arch.size_for ~tracks nl in
  (arch, nl)

let test_run_routes_small_circuit () =
  let arch, nl = small_case () in
  let r = Tool.run_exn ~config:(quick_config (Nl.n_cells nl)) arch nl in
  Alcotest.(check bool) "fully routed" true r.Tool.fully_routed;
  Alcotest.(check int) "g zero" 0 r.Tool.g;
  Alcotest.(check int) "d zero" 0 r.Tool.d;
  Alcotest.(check bool) "positive delay" true (r.Tool.critical_delay > 0.0);
  (* the result state is internally consistent (validate=true already
     checked during the run; check the final state again explicitly) *)
  (match Rs.check r.Tool.route with
  | Ok () -> ()
  | Error e -> Alcotest.failf "final route state invalid: %s" e);
  match Spr_layout.Placement.check r.Tool.place with
  | Ok () -> ()
  | Error e -> Alcotest.failf "final placement invalid: %s" e

let test_run_deterministic () =
  let arch, nl = small_case () in
  let cfg = quick_config (Nl.n_cells nl) in
  let a = Tool.run_exn ~config:cfg arch nl in
  let b = Tool.run_exn ~config:cfg arch nl in
  Alcotest.(check (float 1e-9)) "same final delay" a.Tool.critical_delay b.Tool.critical_delay;
  Alcotest.(check int) "same move count" a.Tool.anneal_report.Engine.n_moves
    b.Tool.anneal_report.Engine.n_moves

let test_run_seed_matters () =
  let arch, nl = small_case () in
  let a = Tool.run_exn ~config:(quick_config ~seed:1 (Nl.n_cells nl)) arch nl in
  let b = Tool.run_exn ~config:(quick_config ~seed:2 (Nl.n_cells nl)) arch nl in
  (* different seeds explore different layouts; delays should differ *)
  Alcotest.(check bool) "different outcomes" true
    (Float.abs (a.Tool.critical_delay -. b.Tool.critical_delay) > 1e-9)

let test_dynamics_recorded () =
  let arch, nl = small_case () in
  let r = Tool.run_exn ~config:(quick_config (Nl.n_cells nl)) arch nl in
  let samples = r.Tool.dynamics in
  Alcotest.(check bool) "samples recorded" true (List.length samples >= 3);
  List.iter
    (fun s ->
      Alcotest.(check bool) "cell pct in range" true
        (s.Dynamics.pct_cells_perturbed >= 0.0 && s.Dynamics.pct_cells_perturbed <= 100.0);
      Alcotest.(check bool) "unrouted pct >= globally-unrouted pct" true
        (s.Dynamics.pct_nets_unrouted >= s.Dynamics.pct_nets_globally_unrouted -. 1e-9))
    samples;
  (* the last sample should be fully routed for this easy fabric *)
  let last = List.nth samples (List.length samples - 1) in
  Alcotest.(check (float 1e-6)) "ends fully routed" 0.0 last.Dynamics.pct_nets_unrouted;
  (* activity decays: the first cooling sample perturbs more cells than
     the last *)
  match samples with
  | first :: _ ->
    Alcotest.(check bool) "placement activity decays" true
      (first.Dynamics.pct_cells_perturbed >= last.Dynamics.pct_cells_perturbed)
  | [] -> Alcotest.fail "no samples"

let test_cost_improves () =
  let arch, nl = small_case () in
  let r = Tool.run_exn ~config:(quick_config (Nl.n_cells nl)) arch nl in
  Alcotest.(check bool) "final cost below initial" true
    (r.Tool.anneal_report.Engine.final_cost < r.Tool.anneal_report.Engine.initial_cost)

let test_pinmap_moves_can_be_disabled () =
  let arch, nl = small_case () in
  let cfg = Tool.Config.with_pinmap_moves false (quick_config (Nl.n_cells nl)) in
  let r = Tool.run_exn ~config:cfg arch nl in
  Alcotest.(check bool) "still completes" true (r.Tool.critical_delay > 0.0);
  (* all pinmaps stay at palette entry 0 *)
  for c = 0 to Nl.n_cells nl - 1 do
    Alcotest.(check int) "pinmap untouched" 0 (Spr_layout.Placement.pinmap_index r.Tool.place c)
  done

let test_timing_driven_routing () =
  let arch, nl = small_case () in
  let cfg = Tool.Config.with_timing_driven_routing true (quick_config (Nl.n_cells nl)) in
  let r = Tool.run_exn ~config:cfg arch nl in
  Alcotest.(check bool) "routes with criticality ordering" true r.Tool.fully_routed;
  (match Rs.check r.Tool.route with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid state: %s" e)

let test_profile_coverage () =
  let arch, nl = small_case () in
  let r = Tool.run_exn ~config:(quick_config (Nl.n_cells nl)) arch nl in
  let p = r.Tool.profile in
  let module Profile = Spr_core.Profile in
  Alcotest.(check bool) "moves were profiled" true
    (Profile.t_moves p = r.Tool.anneal_report.Engine.n_moves);
  Alcotest.(check bool) "decisions were profiled" true
    (Profile.t_accepts p + Profile.t_rejects p = Profile.t_moves p);
  Alcotest.(check bool) "total clock ran" true (Profile.total_seconds p > 0.0);
  (* the acceptance bound from the issue: phase brackets must account
     for the bracketed move time to within 5% *)
  let cov = Profile.coverage p in
  Alcotest.(check bool)
    (Printf.sprintf "phase sum within 5%% of move total (coverage %.4f)" cov)
    true
    (cov >= 0.95 && cov <= 1.0 +. 1e-9);
  (* every phase was entered; Decide fires once per move *)
  List.iter
    (fun ph ->
      Alcotest.(check bool)
        (Printf.sprintf "phase %s entered" (Profile.phase_name ph))
        true
        (Profile.phase_calls p ph > 0))
    Profile.phases;
  Alcotest.(check int) "one decision per move" (Profile.t_moves p)
    (Profile.phase_calls p Profile.Decide);
  (* the dynamics trace carries the per-temperature phase split *)
  List.iter
    (fun s ->
      Alcotest.(check int) "sample has per-phase times" Profile.n_phases
        (Array.length s.Dynamics.phase_seconds);
      Array.iter
        (fun dt -> Alcotest.(check bool) "phase time non-negative" true (dt >= 0.0))
        s.Dynamics.phase_seconds)
    r.Tool.dynamics

let test_run_rejects_cycles () =
  let b = Nl.Builder.create () in
  let a = Nl.Builder.add_cell b ~name:"a" ~kind:Spr_netlist.Cell_kind.Comb ~n_inputs:1 in
  let c = Nl.Builder.add_cell b ~name:"c" ~kind:Spr_netlist.Cell_kind.Comb ~n_inputs:1 in
  let na = Nl.Builder.add_net b ~name:"na" ~driver:a in
  let nc = Nl.Builder.add_net b ~name:"nc" ~driver:c in
  Nl.Builder.add_sink b ~net:na ~cell:c ~pin:0;
  Nl.Builder.add_sink b ~net:nc ~cell:a ~pin:0;
  let nl = Nl.Builder.finish_exn b in
  let arch = Arch.create ~rows:2 ~cols:4 ~tracks:4 () in
  match Tool.run arch nl with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "combinational cycle accepted"

let test_run_rejects_overflow () =
  let nl = Gen.generate (Gen.default ~n_cells:100) ~seed:1 in
  let arch = Arch.create ~rows:2 ~cols:5 ~tracks:4 () in
  match Tool.run arch nl with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "overfull fabric accepted"

(* --- configuration validation --- *)

let expect_invalid_config label config =
  let arch, nl = small_case () in
  match Tool.run ~config arch nl with
  | Error (Tool.Invalid_config _) -> ()
  | Error e -> Alcotest.failf "%s: wrong error %s" label (Tool.error_to_string e)
  | Ok _ -> Alcotest.failf "%s: accepted" label

let test_config_validation () =
  let base = quick_config 60 in
  expect_invalid_config "pinmap prob 1.5" (Tool.Config.with_pinmap_moves ~prob:1.5 true base);
  expect_invalid_config "pinmap prob -0.1"
    (Tool.Config.with_pinmap_moves ~prob:(-0.1) true base);
  expect_invalid_config "pinmap prob nan" (Tool.Config.with_pinmap_moves ~prob:Float.nan true base);
  expect_invalid_config "swap tries 0" (Tool.Config.with_max_swap_tries 0 base);
  expect_invalid_config "negative weight"
    (Tool.Config.with_weights { base.Tool.Config.weights with Tool.Config.g_per_net = -1.0 } base);
  expect_invalid_config "time budget 0" (Tool.Config.with_time_budget 0.0 base);
  expect_invalid_config "negative moves" (Tool.Config.with_max_moves (-1) base);
  expect_invalid_config "stop after 0" (Tool.Config.with_stop_after_accepted 0 base);
  expect_invalid_config "0 replicas" (Tool.Config.with_replicas 0 base);
  expect_invalid_config "negative stream" (Tool.Config.with_stream (-1) base);
  expect_invalid_config "exchange period 0"
    (Tool.Config.with_replicas ~exchange:(Spr_anneal.Portfolio.Best_exchange 0) 2 base);
  expect_invalid_config "negative race margin" (Tool.Config.with_race_margin (-1.0) base);
  expect_invalid_config "race margin nan" (Tool.Config.with_race_margin Float.nan base);
  expect_invalid_config "race every 0" (Tool.Config.with_race_every 0 base);
  expect_invalid_config "negative race warmup" (Tool.Config.with_race_warmup (-1) base);
  expect_invalid_config "racing replaces the exchange barrier"
    Tool.Config.(
      base
      |> with_replicas ~exchange:(Spr_anneal.Portfolio.Best_exchange 2) 2
      |> with_scheduler_kind `Racing);
  (* scheduler spelling vocabulary round-trips *)
  List.iter
    (fun (s, want) ->
      match Tool.Config.scheduler_of_string s with
      | Ok ks when ks = want -> ()
      | _ -> Alcotest.failf "scheduler spelling %s" s)
    [ ("barrier", (`Barrier, true)); ("racing", (`Racing, true)); ("racing:free", (`Racing, false)) ];
  (match Tool.Config.scheduler_of_string "greedy" with
  | Ok _ -> Alcotest.fail "accepted an unknown scheduler"
  | Error _ -> ());
  (* every problem is named in one structured message *)
  (match
     Tool.Config.validated
       Tool.Config.(base |> with_max_swap_tries 0 |> with_pinmap_moves ~prob:2.0 true)
   with
  | Ok _ -> Alcotest.fail "invalid config validated"
  | Error msg ->
    let has needle =
      let nl = String.length needle and ml = String.length msg in
      let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "mentions pinmap prob" true (has "pinmap_move_prob");
    Alcotest.(check bool) "mentions swap tries" true (has "max_swap_tries"));
  (* clamp-style fields are normalized, not rejected *)
  match Tool.Config.validated (Tool.Config.with_validate ~every:0 true base) with
  | Error e -> Alcotest.failf "clamped field rejected: %s" e
  | Ok c -> Alcotest.(check int) "validate_every clamped" 1 c.Tool.Config.validation.Tool.Config.validate_every

(* --- parallel portfolio --- *)

let portfolio_config ?(seed = 1) ?(exchange = Spr_anneal.Portfolio.Independent) ~replicas n =
  Tool.Config.(quick_config ~seed n |> with_replicas ~exchange replicas)

let check_same_result label (a : Tool.result) (b : Tool.result) =
  Alcotest.(check bool) (label ^ ": identical layout") true
    (Rs.snapshot a.Tool.route = Rs.snapshot b.Tool.route);
  Alcotest.(check (float 1e-12)) (label ^ ": identical delay") a.Tool.critical_delay
    b.Tool.critical_delay;
  Alcotest.(check int) (label ^ ": identical moves") a.Tool.anneal_report.Engine.n_moves
    b.Tool.anneal_report.Engine.n_moves

(* A one-replica portfolio takes the exact serial code path. *)
let test_portfolio_one_is_serial () =
  let arch, nl = small_case () in
  let n = Nl.n_cells nl in
  let serial = Tool.run_exn ~config:(quick_config n) arch nl in
  let p = Tool.run_portfolio_exn ~config:(portfolio_config ~replicas:1 n) arch nl in
  Alcotest.(check int) "one result" 1 (Array.length p.Tool.p_results);
  Alcotest.(check int) "no exchanges" 0 (List.length p.Tool.p_exchanges);
  check_same_result "k=1" serial (Tool.best_result p)

(* Under [Independent] exchange, replica k is exactly the serial run on
   RNG stream k — so the portfolio winner is reproducible standalone. *)
let test_portfolio_winner_reproducible () =
  let arch, nl = small_case () in
  let n = Nl.n_cells nl in
  let p = Tool.run_portfolio_exn ~config:(portfolio_config ~replicas:3 n) arch nl in
  Alcotest.(check int) "three results" 3 (Array.length p.Tool.p_results);
  let k = p.Tool.p_best_replica in
  let standalone =
    Tool.run_exn ~config:(Tool.Config.with_stream k (quick_config n)) arch nl
  in
  check_same_result "winner" (Tool.best_result p) standalone;
  (* replicas genuinely explored different trajectories *)
  let snap i = Rs.snapshot p.Tool.p_results.(i).Tool.route in
  Alcotest.(check bool) "replicas 0/1 differ" false (snap 0 = snap 1);
  (* merged profile sums the fleet's move counts *)
  let total =
    Array.fold_left (fun acc (r : Tool.result) -> acc + Profile.t_moves r.Tool.profile) 0
      p.Tool.p_results
  in
  Alcotest.(check int) "profile merged" total (Profile.t_moves p.Tool.p_profile)

(* [Best_exchange] trajectories depend on broadcast layouts, so the
   whole fleet — winner, exchanges, every replica's layout — must still
   be a pure function of the seed, independent of domain scheduling. *)
let test_portfolio_exchange_deterministic () =
  let arch, nl = small_case () in
  let n = Nl.n_cells nl in
  let config =
    portfolio_config ~seed:2 ~exchange:(Spr_anneal.Portfolio.Best_exchange 3) ~replicas:3 n
  in
  let a = Tool.run_portfolio_exn ~config arch nl in
  let b = Tool.run_portfolio_exn ~config arch nl in
  Alcotest.(check int) "same winner" a.Tool.p_best_replica b.Tool.p_best_replica;
  Alcotest.(check bool) "same exchange history" true (a.Tool.p_exchanges = b.Tool.p_exchanges);
  Array.iteri
    (fun i (ra : Tool.result) ->
      check_same_result (Printf.sprintf "replica %d" i) ra b.Tool.p_results.(i))
    a.Tool.p_results;
  (* the audit subsystem accepts every replica's final state *)
  Array.iter
    (fun (r : Tool.result) ->
      match Tool.audit_result r with
      | [] -> ()
      | findings -> Alcotest.failf "audit: %s" (Spr_check.Finding.summarize findings))
    a.Tool.p_results

(* --- racing scheduler --- *)

let rec rmrf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rmrf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(* Aggressive racing parameters (zero margin, short warmup) so the
   quick anneal reliably produces kills to exercise. *)
let racing_config ?(seed = 1) ~replicas n =
  Tool.Config.(
    quick_config ~seed n |> with_replicas replicas |> with_scheduler_kind `Racing
    |> with_race_margin 0.0 |> with_race_warmup 2 |> with_race_every 2)

(* Racing decisions come from masked-trace quantities at rendezvous
   rounds, so the whole fleet — winner, kills, every replica's layout —
   must be a pure function of the seed, like the exchange barrier. *)
let test_portfolio_racing_deterministic () =
  let arch, nl = small_case () in
  let n = Nl.n_cells nl in
  let config = racing_config ~replicas:3 n in
  let a = Tool.run_portfolio_exn ~config arch nl in
  let b = Tool.run_portfolio_exn ~config arch nl in
  Alcotest.(check bool) "racing killed something" true (a.Tool.p_scheds <> []);
  Alcotest.(check int) "same winner" a.Tool.p_best_replica b.Tool.p_best_replica;
  Alcotest.(check bool) "same decision rounds" true (a.Tool.p_scheds = b.Tool.p_scheds);
  Alcotest.(check bool) "no exchange rounds under racing" true (a.Tool.p_exchanges = []);
  Array.iteri
    (fun i (ra : Tool.result) ->
      check_same_result (Printf.sprintf "replica %d" i) ra b.Tool.p_results.(i))
    a.Tool.p_results

(* Interrupting a racing fleet mid-run and resuming it must land on the
   uninterrupted run, bit for bit: snapshots restore each replica's
   trajectory and [sched-*.rec] records replay the killing rounds. *)
let test_portfolio_racing_resume_matches () =
  let arch, nl = small_case () in
  let n = Nl.n_cells nl in
  let dir_full = "core-racing-full" and dir_cut = "core-racing-cut" in
  rmrf dir_full;
  rmrf dir_cut;
  let with_dir dir c = Tool.Config.with_run_dir ~snapshot_every:1 dir c in
  let base = racing_config ~replicas:2 n in
  let full = Tool.run_portfolio_exn ~config:(with_dir dir_full base) arch nl in
  Alcotest.(check bool) "baseline killed something" true (full.Tool.p_scheds <> []);
  let moves0 = full.Tool.p_results.(0).Tool.anneal_report.Engine.n_moves in
  let cut =
    Tool.run_portfolio_exn
      ~config:(with_dir dir_cut (Tool.Config.with_max_moves (moves0 / 2) base))
      arch nl
  in
  Alcotest.(check bool) "budget actually interrupted the fleet" true
    (Array.exists
       (fun (r : Tool.result) -> r.Tool.status <> Tool.Completed)
       cut.Tool.p_results);
  let resumed =
    Tool.run_portfolio_exn ~config:(with_dir dir_cut base) ~resume_dir:dir_cut arch nl
  in
  Alcotest.(check int) "same winner" full.Tool.p_best_replica resumed.Tool.p_best_replica;
  Alcotest.(check bool) "same decision rounds" true (full.Tool.p_scheds = resumed.Tool.p_scheds);
  Array.iteri
    (fun i (ra : Tool.result) ->
      check_same_result (Printf.sprintf "replica %d" i) ra resumed.Tool.p_results.(i))
    full.Tool.p_results;
  rmrf dir_full;
  rmrf dir_cut

let test_dynamics_module () =
  let d = Dynamics.create ~n_cells:10 in
  Dynamics.note_accepted_cells d [ 1; 2; 2; 3 ];
  Dynamics.flush d ~temp_index:1 ~temperature:5.0 ~g_frac:0.5 ~d_frac:0.75 ~acceptance:0.9
    ~cost:1.0 ~critical_delay:10.0;
  Dynamics.note_accepted_cells d [ 4 ];
  Dynamics.flush d ~temp_index:2 ~temperature:2.5 ~g_frac:0.0 ~d_frac:0.25 ~acceptance:0.5
    ~cost:0.5 ~critical_delay:9.0;
  match Dynamics.samples d with
  | [ s1; s2 ] ->
    Alcotest.(check (float 1e-9)) "3 distinct cells of 10" 30.0 s1.Dynamics.pct_cells_perturbed;
    Alcotest.(check (float 1e-9)) "reset between temps" 10.0 s2.Dynamics.pct_cells_perturbed;
    Alcotest.(check (float 1e-9)) "g pct scaled" 50.0 s1.Dynamics.pct_nets_globally_unrouted;
    Alcotest.(check (float 1e-9)) "d pct scaled" 25.0 s2.Dynamics.pct_nets_unrouted;
    Alcotest.(check int) "unprofiled flush leaves phase times empty" 0
      (Array.length s1.Dynamics.phase_seconds)
  | other -> Alcotest.failf "expected 2 samples, got %d" (List.length other)

let () =
  Alcotest.run "spr_core"
    [
      ( "tool",
        [
          Alcotest.test_case "routes a small circuit" `Slow test_run_routes_small_circuit;
          Alcotest.test_case "deterministic per seed" `Slow test_run_deterministic;
          Alcotest.test_case "seed changes outcome" `Slow test_run_seed_matters;
          Alcotest.test_case "cost improves" `Slow test_cost_improves;
          Alcotest.test_case "dynamics recorded" `Slow test_dynamics_recorded;
          Alcotest.test_case "pinmap moves can be disabled" `Slow test_pinmap_moves_can_be_disabled;
          Alcotest.test_case "timing-driven routing" `Slow test_timing_driven_routing;
          Alcotest.test_case "profile covers the move pipeline" `Slow test_profile_coverage;
          Alcotest.test_case "rejects comb cycles" `Quick test_run_rejects_cycles;
          Alcotest.test_case "rejects overfull fabric" `Quick test_run_rejects_overflow;
        ] );
      ( "config",
        [ Alcotest.test_case "smart constructor rejects nonsense" `Quick test_config_validation ] );
      ( "portfolio",
        [
          Alcotest.test_case "one replica is the serial path" `Slow test_portfolio_one_is_serial;
          Alcotest.test_case "winner reproducible standalone" `Slow
            test_portfolio_winner_reproducible;
          Alcotest.test_case "best-exchange deterministic" `Slow
            test_portfolio_exchange_deterministic;
          Alcotest.test_case "racing deterministic" `Slow test_portfolio_racing_deterministic;
          Alcotest.test_case "racing kill+resume matches uninterrupted" `Slow
            test_portfolio_racing_resume_matches;
        ] );
      ("dynamics", [ Alcotest.test_case "bookkeeping" `Quick test_dynamics_module ]);
    ]
