(* Cross-library integration tests: both flows end to end on the same
   circuits, the simultaneous tool's quality claims in miniature, and a
   BLIF-driven run. *)

module Tool = Spr_core.Tool
module Flow = Spr_flow
module Rs = Spr_route.Route_state
module Sta = Spr_timing.Sta
module Arch = Spr_arch.Arch
module Nl = Spr_netlist.Netlist
module Gen = Spr_netlist.Generator
module Blif = Spr_netlist.Blif
module Circuits = Spr_netlist.Circuits
module Engine = Spr_anneal.Engine

let quick_tool n seed =
  Tool.Config.(
    default |> with_seed seed
    |> with_anneal
         {
           (Engine.default_config ~n) with
           Engine.moves_per_temp = max 300 (4 * n);
           max_temperatures = 45;
         })

let quick_flow n seed = Tool.Config.with_flow_preset "seq" (quick_tool n seed)

let test_both_flows_route_and_sim_wins () =
  let nl = Gen.generate (Gen.default ~n_cells:90) ~seed:17 in
  let n = Nl.n_cells nl in
  let arch = Arch.size_for ~tracks:28 nl in
  let seq = Flow.run_exn ~config:(quick_flow n 5) arch nl in
  let sim = Tool.run_exn ~config:(quick_tool n 5) arch nl in
  Alcotest.(check bool) "seq routed" true seq.Flow.f_fully_routed;
  Alcotest.(check bool) "sim routed" true sim.Tool.fully_routed;
  (* The headline claim in miniature: the simultaneous tool should beat
     (or at worst tie within 5%) the sequential flow on worst-case
     delay. *)
  Alcotest.(check bool)
    (Printf.sprintf "sim delay %.1f vs seq %.1f" sim.Tool.critical_delay
       seq.Flow.f_critical_delay)
    true
    (sim.Tool.critical_delay <= seq.Flow.f_critical_delay *. 1.05)

let test_post_layout_sta_agrees_with_internal () =
  (* Paper: the external analyzer agreed within 10% with the tool's
     internal estimates. Ours share the delay model, so a from-scratch
     STA over the final embedding must agree exactly. *)
  let nl = Gen.generate (Gen.default ~n_cells:70) ~seed:3 in
  let n = Nl.n_cells nl in
  let arch = Arch.size_for ~tracks:24 nl in
  let sim = Tool.run_exn ~config:(quick_tool n 2) arch nl in
  let fresh = Sta.create Spr_timing.Delay_model.default sim.Tool.route in
  Alcotest.(check (float 1e-6)) "post-layout STA matches" sim.Tool.critical_delay
    (Sta.critical_delay fresh)

let test_blif_through_full_flow () =
  let blif =
    {|.model pipeline
.inputs a b c
.outputs x y
.names a b t1
11 1
.latch t1 q1 0
.names q1 c t2
11 1
.latch t2 q2 0
.names q2 a x
11 1
.names q1 q2 y
11 1
.end
|}
  in
  match Blif.parse_string blif with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok nl ->
    let arch = Arch.create ~rows:3 ~cols:6 ~tracks:10 () in
    let r = Tool.run_exn ~config:(quick_tool (Nl.n_cells nl) 1) arch nl in
    Alcotest.(check bool) "blif circuit routed" true r.Tool.fully_routed;
    Alcotest.(check bool) "delay positive" true (r.Tool.critical_delay > 0.0)

let test_presets_route_under_sim () =
  (* The smallest preset end to end with a modest effort profile. *)
  let nl = Circuits.make_by_name "cse" in
  let n = Nl.n_cells nl in
  let arch = Arch.size_for ~tracks:28 nl in
  let r = Tool.run_exn ~config:(quick_tool n 1) arch nl in
  Alcotest.(check bool) "cse routed" true r.Tool.fully_routed

let test_sim_needs_fewer_tracks () =
  (* Table 2 in miniature: find the narrowest fabric each flow still
     routes (coarse descent), and check sim <= seq. *)
  let nl = Gen.generate (Gen.default ~n_cells:80) ~seed:23 in
  let n = Nl.n_cells nl in
  let min_tracks run_fn =
    let rec descend tracks last_good =
      if tracks < 6 then last_good
      else begin
        let arch = Arch.size_for ~tracks nl in
        if run_fn arch then descend (tracks - 3) tracks else last_good
      end
    in
    descend 24 27
  in
  let seq_min =
    min_tracks (fun arch -> (Flow.run_exn ~config:(quick_flow n 9) arch nl).Flow.f_fully_routed)
  in
  let sim_min =
    min_tracks (fun arch -> (Tool.run_exn ~config:(quick_tool n 9) arch nl).Tool.fully_routed)
  in
  Alcotest.(check bool)
    (Printf.sprintf "sim min %d <= seq min %d" sim_min seq_min)
    true (sim_min <= seq_min)

let () =
  Alcotest.run "spr_integration"
    [
      ( "flows",
        [
          Alcotest.test_case "both route; sim wins on delay" `Slow
            test_both_flows_route_and_sim_wins;
          Alcotest.test_case "post-layout STA agrees" `Slow test_post_layout_sta_agrees_with_internal;
          Alcotest.test_case "blif through full flow" `Slow test_blif_through_full_flow;
          Alcotest.test_case "cse preset routes" `Slow test_presets_route_under_sim;
          Alcotest.test_case "sim needs fewer tracks" `Slow test_sim_needs_fewer_tracks;
        ] );
    ]
