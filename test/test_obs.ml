(* Unit tests for the spr_obs observability layer: canonical JSON
   printing/parsing, the metrics registry (including cross-registry
   absorb), span recording, and the shared dynamics renderer. *)

module Json = Spr_obs.Json
module Metrics = Spr_obs.Metrics
module Report = Spr_obs.Report
module Trace = Spr_obs.Trace
module Sink = Spr_obs.Sink
module Obs = Spr_obs.Obs

(* --- canonical JSON --- *)

let roundtrip s =
  match Json.parse s with
  | Error e -> Alcotest.failf "parse %S failed: %s" s e
  | Ok v -> Json.to_string v

let test_json_canonical () =
  Alcotest.(check string) "object order preserved" {|{"b":1,"a":2}|} (roundtrip {| {"b": 1, "a": 2} |});
  Alcotest.(check string) "nested" {|{"x":[1,2.5,"s",null,true]}|}
    (roundtrip {|{"x":[1, 2.5, "s", null, true]}|});
  Alcotest.(check string) "string escapes" "\"a\\n\\\"b\\\\\"" (roundtrip "\"a\\n\\\"b\\\\\"");
  Alcotest.(check string) "unicode escape becomes utf-8" "\"\xc3\xa9\"" (roundtrip {|"é"|});
  Alcotest.(check string) "empty containers" {|{"a":[],"b":{}}|} (roundtrip {|{"a":[],"b":{}}|})

let test_json_floats () =
  List.iter
    (fun f ->
      let s = Json.float_repr f in
      match float_of_string_opt s with
      | None -> Alcotest.failf "%h printed unparseable %S" f s
      | Some f2 ->
        Alcotest.(check bool)
          (Printf.sprintf "%h round-trips via %S" f s)
          true
          (Int64.bits_of_float f = Int64.bits_of_float f2))
    [ 0.; 1.; -1.; 0.1; 1e-300; 1.7976931348623157e308; 4.12; 128.955875; 3.0000000000000004 ];
  Alcotest.(check string) "infinity" "1e999" (Json.float_repr infinity);
  Alcotest.(check string) "neg infinity" "-1e999" (Json.float_repr neg_infinity);
  Alcotest.(check string) "nan is null" "null" (Json.float_repr nan);
  (* 1e999 overflows back to infinity on read; to_float maps Null to nan. *)
  (match Json.parse "1e999" with
  | Ok v -> Alcotest.(check bool) "1e999 reads as inf" true (Json.to_float v = Some infinity)
  | Error e -> Alcotest.failf "1e999 did not parse: %s" e);
  match Json.parse "null" with
  | Ok v ->
    Alcotest.(check bool) "null reads as nan" true
      (match Json.to_float v with Some f -> Float.is_nan f | None -> false)
  | Error e -> Alcotest.failf "null did not parse: %s" e

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted malformed %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{\"a\" 1}"; "nan" ]

(* --- metrics registry --- *)

let test_metrics_registry () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "moves" in
  let g = Metrics.gauge reg "seconds" in
  let h = Metrics.histogram reg ~bounds:[| 0.5 |] "acc" in
  Metrics.incr c;
  Metrics.add c 4;
  Metrics.gauge_add g 1.5;
  Metrics.observe h 0.25;
  Metrics.observe h 0.75;
  Alcotest.(check int) "counter" 5 (Metrics.counter_value c);
  Alcotest.(check bool) "gauge" true (Metrics.gauge_value g = 1.5);
  Alcotest.(check int) "histogram total" 2 (Metrics.histogram_total h);
  (* get-or-create returns the same cell; conflicting kinds are refused *)
  Metrics.incr (Metrics.counter reg "moves");
  Alcotest.(check int) "same cell" 6 (Metrics.counter_value c);
  (match Metrics.counter reg "seconds" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind conflict not detected");
  (* snapshot preserves registration order *)
  Alcotest.(check (list string)) "registration order" [ "moves"; "seconds"; "acc" ]
    (List.map fst (Metrics.snapshot reg))

let test_metrics_absorb () =
  let mk () =
    let reg = Metrics.create () in
    let c = Metrics.counter reg "n" in
    let h = Metrics.histogram reg ~bounds:[| 1.0; 2.0 |] "hist" in
    (reg, c, h)
  in
  let a, ca, ha = mk () in
  let b, cb, hb = mk () in
  Metrics.add ca 3;
  Metrics.add cb 4;
  Metrics.observe ha 0.5;
  Metrics.observe hb 1.5;
  Metrics.observe hb 9.0;
  (* b also has a metric a has never seen *)
  Metrics.gauge_set (Metrics.gauge b "only_b") 2.25;
  Metrics.absorb a b;
  Alcotest.(check int) "counters sum" 7 (Metrics.counter_value ca);
  Alcotest.(check int) "histogram totals sum" 3 (Metrics.histogram_total ha);
  (match List.assoc_opt "only_b" (Metrics.snapshot a) with
  | Some (Metrics.Value v) -> Alcotest.(check bool) "foreign gauge adopted" true (v = 2.25)
  | _ -> Alcotest.fail "absorb dropped a metric unique to the source");
  match List.assoc_opt "hist" (Metrics.snapshot a) with
  | Some (Metrics.Buckets { counts; _ }) ->
    Alcotest.(check (list int)) "bucket-wise sum" [ 1; 1; 1 ] (Array.to_list counts)
  | _ -> Alcotest.fail "histogram missing from snapshot"

(* A racing fleet merges registries from replicas that died mid-run:
   the killed replica's dump covers only part of the temperature range
   and may lack metrics the survivors registered (and vice versa).
   Bucket-wise histogram addition must hold across such partial dumps,
   and absorbing an empty registry must be the identity. *)
let test_metrics_absorb_partial_dump () =
  let bounds = [| 0.25; 0.5; 0.75 |] in
  let survivor = Metrics.create () in
  let hs = Metrics.histogram survivor ~bounds "acceptance" in
  List.iter (Metrics.observe hs) [ 0.1; 0.3; 0.6; 0.9; 0.95 ];
  Metrics.add (Metrics.counter survivor "moves") 100;
  let killed = Metrics.create () in
  let hk = Metrics.histogram killed ~bounds "acceptance" in
  (* killed early: observed only the hot tail of the schedule *)
  List.iter (Metrics.observe hk) [ 0.8; 0.85 ];
  Metrics.add (Metrics.counter killed "kills") 1;
  let total = Metrics.create () in
  Metrics.absorb total survivor;
  Metrics.absorb total killed;
  Metrics.absorb total (Metrics.create ());
  (match List.assoc_opt "acceptance" (Metrics.snapshot total) with
  | Some (Metrics.Buckets { counts; _ }) ->
    Alcotest.(check (list int)) "bucket-wise sum across partial dumps" [ 1; 1; 1; 4 ]
      (Array.to_list counts)
  | _ -> Alcotest.fail "merged histogram missing");
  (match List.assoc_opt "moves" (Metrics.snapshot total) with
  | Some (Metrics.Count n) -> Alcotest.(check int) "survivor counter" 100 n
  | _ -> Alcotest.fail "survivor counter missing");
  match List.assoc_opt "kills" (Metrics.snapshot total) with
  | Some (Metrics.Count n) -> Alcotest.(check int) "killed replica's counter kept" 1 n
  | _ -> Alcotest.fail "killed replica's counter missing"

(* --- spans --- *)

let test_spans_nest_and_balance () =
  let sink = Sink.memory () in
  Obs.with_recording ~sink ~replica:3 (fun () ->
      Obs.span ~name:"outer" (fun () -> Obs.span ~name:"inner" (fun () -> ())));
  let events = Sink.events sink in
  let shape =
    List.map
      (fun e ->
        match e.Trace.ev with
        | Trace.Span_begin { name; depth; _ } -> Printf.sprintf "b:%s@%d" name depth
        | Trace.Span_end { name; depth; _ } -> Printf.sprintf "e:%s@%d" name depth
        | _ -> "?")
      events
  in
  Alcotest.(check (list string)) "nested spans balance"
    [ "b:outer@0"; "b:inner@1"; "e:inner@1"; "e:outer@0" ]
    shape;
  List.iter
    (fun e -> Alcotest.(check int) "events tagged with the replica" 3 e.Trace.ev_replica)
    events;
  (* outside with_recording, spans are free no-ops that still run f *)
  let hit = ref false in
  Obs.span ~name:"ignored" (fun () -> hit := true);
  Alcotest.(check bool) "span body ran without a sink" true !hit;
  Alcotest.(check bool) "nothing recorded without a sink" true (not (Obs.recording ()))

(* --- shared dynamics renderer --- *)

let row i =
  {
    Report.dr_temp_index = i;
    dr_temperature = 0.5 /. float_of_int (i + 1);
    dr_pct_cells = 90.0 -. float_of_int i;
    dr_pct_g_unrouted = 8.0;
    dr_pct_unrouted = 21.0;
    dr_acceptance = 0.8;
    dr_cost = 3.25;
    dr_delay_ns = 250.0;
    dr_phase_seconds = [ ("propose", 0.001); ("decide", 0.002) ];
  }

let render f rows =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf rows;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let test_render_dynamics () =
  let text = render Report.render_dynamics [ row 0; row 1 ] in
  let lines = String.split_on_char '\n' (String.trim text) in
  Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
  Alcotest.(check bool) "header names the Figure-6 columns" true
    (match lines with h :: _ -> String.length h > 0 && String.trim h <> "" | [] -> false);
  (* the row from a Trace.Temp event renders identically to the same
     row rendered via Dynamics.pp_series -- single renderer *)
  let via_dynamics =
    render Spr_core.Dynamics.pp_series (List.map Spr_core.Dynamics.of_row [ row 0; row 1 ])
  in
  let direct = render Report.render_dynamics [ row 0; row 1 ] in
  (* of_row drops the phase columns (foreign names), which the dynamics
     table doesn't show, so the tables agree *)
  Alcotest.(check string) "Dynamics.pp_series delegates here" direct via_dynamics

let test_phase_series_skips_partial_rows () =
  let names = [ "propose"; "decide" ] in
  let full = row 0 in
  let partial = { (row 1) with Report.dr_phase_seconds = [] } in
  let text = render (fun ppf -> Report.render_phase_series ppf ~phase_names:names) [ full; partial ] in
  let lines = String.split_on_char '\n' (String.trim text) in
  Alcotest.(check int) "header + only the complete row" 2 (List.length lines)

(* --- adversarial trace input ---

   A trace file arriving over the service socket or from a crashed
   run's disk can be truncated mid-line, interleaved with garbage,
   duplicated, or binary junk. Decoding and validation must answer
   every such input with Ok/Error — never an exception. *)

let valid_trace_text () =
  let ev p = { Trace.ev_replica = 0; ev = p } in
  let events =
    (ev (Trace.Run_start { label = "fuzz"; seed = 1; replicas = 1; n_cells = 4; n_nets = 3 })
    :: List.init 4 (fun i -> ev (Trace.Temp (row i))))
    @ [
        ev (Trace.Replica_end { status = "completed"; g = 0; d = 0; delay_ns = 1.5; best_cost = 2.0 });
        ev
          (Trace.Run_end
             { status = "completed"; g = 0; d = 0; delay_ns = 1.5; best_cost = 2.0; wall_seconds = 0.1 });
      ]
  in
  String.concat "\n" (List.map Trace.encode_line events) ^ "\n"

let corrupt_trace rng text =
  let lines () = String.split_on_char '\n' text in
  let splice_line insert =
    let ls = lines () in
    let at = Spr_util.Rng.int rng (List.length ls) in
    String.concat "\n" (List.concat (List.mapi (fun i l -> if i = at then [ insert; l ] else [ l ]) ls))
  in
  match Spr_util.Rng.int rng 6 with
  | 0 -> String.sub text 0 (Spr_util.Rng.int rng (String.length text))  (* truncation *)
  | 1 -> splice_line "this is not json"
  | 2 -> splice_line (String.init 16 (fun _ -> Char.chr (Spr_util.Rng.int rng 256)))
  | 3 ->
    (* duplicate the run_end row *)
    let ls = List.filter (fun l -> String.trim l <> "") (lines ()) in
    String.concat "\n" (ls @ [ List.nth ls (List.length ls - 1) ])
  | 4 ->
    (* drop a random line: structurally wrong, must be a clean Error *)
    let ls = lines () in
    let at = Spr_util.Rng.int rng (List.length ls) in
    String.concat "\n" (List.filteri (fun i _ -> i <> at) ls)
  | _ ->
    (* flip one byte *)
    let b = Bytes.of_string text in
    if Bytes.length b = 0 then text
    else begin
      let at = Spr_util.Rng.int rng (Bytes.length b) in
      Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor 0xff));
      Bytes.to_string b
    end

let test_trace_fuzz_total () =
  let rng = Spr_util.Rng.create 42 in
  let base = valid_trace_text () in
  (match Trace.of_string base with
  | Error e -> Alcotest.failf "valid trace rejected: %s" e
  | Ok events -> (
    match Trace.validate events with
    | Ok () -> ()
    | Error e -> Alcotest.failf "valid trace failed validation: %s" e));
  for i = 1 to 200 do
    (* stack up to three corruptions *)
    let text = ref base in
    for _ = 0 to Spr_util.Rng.int rng 3 do
      text := corrupt_trace rng !text
    done;
    match Trace.of_string !text with
    | Ok events -> (
      (* decode may survive (e.g. a duplicated row is valid JSON);
         validation must still answer structurally, without raising *)
      match Trace.validate events with Ok () | Error _ -> ())
    | Error msg ->
      if String.trim msg = "" then Alcotest.failf "case %d: empty diagnostic" i
  done

let () =
  Alcotest.run "spr_obs"
    [
      ( "json",
        [
          Alcotest.test_case "canonical print/parse round trip" `Quick test_json_canonical;
          Alcotest.test_case "float repr shortest round-trip" `Quick test_json_floats;
          Alcotest.test_case "malformed inputs rejected" `Quick test_json_parse_errors;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry get-or-create and snapshot" `Quick test_metrics_registry;
          Alcotest.test_case "absorb merges by name" `Quick test_metrics_absorb;
          Alcotest.test_case "absorb merges a killed replica's partial dump" `Quick
            test_metrics_absorb_partial_dump;
        ] );
      ("spans", [ Alcotest.test_case "nesting, tagging, no-op without sink" `Quick test_spans_nest_and_balance ]);
      ( "trace",
        [
          Alcotest.test_case "adversarial input decodes totally" `Quick test_trace_fuzz_total;
        ] );
      ( "render",
        [
          Alcotest.test_case "dynamics table via the one renderer" `Quick test_render_dynamics;
          Alcotest.test_case "phase series skips partial rows" `Quick
            test_phase_series_skips_partial_rows;
        ] );
    ]
