module Seq_place = Spr_seq.Seq_place
module Seq_route = Spr_seq.Seq_route
module Rs = Spr_route.Route_state
module Router = Spr_route.Router
module P = Spr_layout.Placement
module Arch = Spr_arch.Arch
module Nl = Spr_netlist.Netlist
module Gen = Spr_netlist.Generator
module Rng = Spr_util.Rng
module Engine = Spr_anneal.Engine

let small_case ?(n_cells = 60) ?(seed = 7) ?(tracks = 20) () =
  let nl = Gen.generate (Gen.default ~n_cells) ~seed in
  let arch = Arch.size_for ~tracks nl in
  (arch, nl)

let quick_place n =
  {
    Seq_place.default_config with
    Seq_place.anneal =
      Some
        {
          (Engine.default_config ~n) with
          Engine.moves_per_temp = max 200 (4 * n);
          max_temperatures = 40;
        };
  }

let test_placer_reduces_wirelength () =
  let arch, nl = small_case () in
  (* random placement wirelength as the baseline *)
  let random_place = P.create_exn arch nl ~rng:(Rng.create 99) in
  let wl_random = Seq_place.wirelength random_place in
  match Seq_place.run ~config:(quick_place (Nl.n_cells nl)) arch nl with
  | Error e -> Alcotest.fail e
  | Ok (place, report) ->
    let wl = Seq_place.wirelength place in
    Alcotest.(check bool) "wirelength reduced vs random" true (wl < wl_random);
    Alcotest.(check bool) "cost improved" true
      (report.Engine.final_cost < report.Engine.initial_cost);
    (match P.check place with
    | Ok () -> ()
    | Error e -> Alcotest.failf "placement invalid: %s" e)

let test_placer_keeps_default_pinmaps () =
  let arch, nl = small_case () in
  match Seq_place.run ~config:(quick_place (Nl.n_cells nl)) arch nl with
  | Error e -> Alcotest.fail e
  | Ok (place, _) ->
    for c = 0 to Nl.n_cells nl - 1 do
      Alcotest.(check int) "pinmap 0" 0 (P.pinmap_index place c)
    done

let test_seq_route_completes () =
  let arch, nl = small_case ~tracks:26 () in
  match Seq_place.run ~config:(quick_place (Nl.n_cells nl)) arch nl with
  | Error e -> Alcotest.fail e
  | Ok (place, _) ->
    let st = Rs.create place in
    Seq_route.run ~rng:(Rng.create 4) st;
    Alcotest.(check bool) "fully routed at generous width" true (Rs.fully_routed st);
    (match Rs.check st with
    | Ok () -> ()
    | Error e -> Alcotest.failf "route state invalid: %s" e)

let test_seq_route_beats_plain_route_all () =
  (* The rip-up-and-retry loop should never leave more nets unrouted
     than a plain route_all on the same placement. *)
  let arch, nl = small_case ~tracks:12 () in
  match Seq_place.run ~config:(quick_place (Nl.n_cells nl)) arch nl with
  | Error e -> Alcotest.fail e
  | Ok (place, _) ->
    let plain = Rs.create place in
    Router.route_all plain;
    let improved = Rs.create place in
    Seq_route.run ~rng:(Rng.create 4) improved;
    Alcotest.(check bool) "improvement loop helps or ties" true
      (Rs.d_count improved <= Rs.d_count plain)

(* The sequential baseline now lives behind the flow engine's "seq"
   preset (greedy place, route, sta) — these tests drive it the way
   every remaining caller does. *)
let seq_config ~seed n =
  Spr_core.Tool.Config.(
    default |> with_seed seed
    |> with_anneal (Option.get (quick_place n).Seq_place.anneal)
    |> with_flow_preset "seq")

let test_flow_end_to_end () =
  let arch, nl = small_case ~tracks:26 () in
  let r = Spr_flow.run_exn ~config:(seq_config ~seed:3 (Nl.n_cells nl)) arch nl in
  Alcotest.(check bool) "routed" true r.Spr_flow.f_fully_routed;
  Alcotest.(check bool) "delay positive" true (r.Spr_flow.f_critical_delay > 0.0);
  Alcotest.(check bool) "wirelength positive" true
    (Seq_place.wirelength r.Spr_flow.f_place > 0.0);
  Alcotest.(check int) "g" 0 r.Spr_flow.f_g;
  Alcotest.(check int) "d" 0 r.Spr_flow.f_d

let test_flow_deterministic () =
  let arch, nl = small_case () in
  let config = seq_config ~seed:11 (Nl.n_cells nl) in
  let a = Spr_flow.run_exn ~config arch nl in
  let b = Spr_flow.run_exn ~config arch nl in
  Alcotest.(check (float 1e-9)) "same delay" a.Spr_flow.f_critical_delay
    b.Spr_flow.f_critical_delay;
  Alcotest.(check (float 1e-9)) "same wirelength"
    (Seq_place.wirelength a.Spr_flow.f_place)
    (Seq_place.wirelength b.Spr_flow.f_place)

let test_flow_rejects_cycles () =
  let b = Nl.Builder.create () in
  let a = Nl.Builder.add_cell b ~name:"a" ~kind:Spr_netlist.Cell_kind.Comb ~n_inputs:1 in
  let c = Nl.Builder.add_cell b ~name:"c" ~kind:Spr_netlist.Cell_kind.Comb ~n_inputs:1 in
  let na = Nl.Builder.add_net b ~name:"na" ~driver:a in
  let nc = Nl.Builder.add_net b ~name:"nc" ~driver:c in
  Nl.Builder.add_sink b ~net:na ~cell:c ~pin:0;
  Nl.Builder.add_sink b ~net:nc ~cell:a ~pin:0;
  let nl = Nl.Builder.finish_exn b in
  let arch = Arch.create ~rows:2 ~cols:4 ~tracks:4 () in
  match
    Spr_flow.run
      ~config:Spr_core.Tool.Config.(with_flow_preset "seq" default)
      arch nl
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "combinational cycle accepted"

let test_placer_bookkeeping_oracle () =
  let arch, nl = small_case () in
  match Seq_place.self_test Seq_place.default_config arch nl ~seed:21 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "spr_seq"
    [
      ( "placer",
        [
          Alcotest.test_case "reduces wirelength" `Slow test_placer_reduces_wirelength;
          Alcotest.test_case "default pinmaps" `Slow test_placer_keeps_default_pinmaps;
          Alcotest.test_case "incremental bookkeeping oracle" `Quick
            test_placer_bookkeeping_oracle;
        ] );
      ( "router",
        [
          Alcotest.test_case "completes at generous width" `Slow test_seq_route_completes;
          Alcotest.test_case "improvement loop helps" `Slow test_seq_route_beats_plain_route_all;
        ] );
      ( "flow",
        [
          Alcotest.test_case "end to end" `Slow test_flow_end_to_end;
          Alcotest.test_case "deterministic" `Slow test_flow_deterministic;
          Alcotest.test_case "rejects cycles" `Quick test_flow_rejects_cycles;
        ] );
    ]
