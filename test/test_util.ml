module Rng = Spr_util.Rng
module Pqueue = Spr_util.Pqueue
module Interval = Spr_util.Interval
module Stats = Spr_util.Stats
module Journal = Spr_util.Journal
module Union_find = Spr_util.Union_find
module Table = Spr_util.Table
module Bitset = Spr_util.Bitset
module Iqueue = Spr_util.Iqueue

let qtest = QCheck_alcotest.to_alcotest

(* --- Rng --- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different streams" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_int_bounds =
  QCheck.Test.make ~name:"rng int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Rng.int rng bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

let test_rng_float_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 3.5 in
    Alcotest.(check bool) "in [0,3.5)" true (v >= 0.0 && v < 3.5)
  done

let test_rng_int_covers () =
  (* Every residue of a small bound appears eventually. *)
  let rng = Rng.create 11 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Rng.int rng 5) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let test_rng_split_independent () =
  let a = Rng.create 3 in
  let b = Rng.split a in
  Alcotest.(check bool) "split streams differ" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_stream_zero_is_create () =
  let a = Rng.create 17 and b = Rng.stream ~seed:17 ~index:0 in
  for _ = 1 to 64 do
    Alcotest.(check int64) "stream 0 = create" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_stream_determinism () =
  let a = Rng.stream ~seed:9 ~index:3 and b = Rng.stream ~seed:9 ~index:3 in
  for _ = 1 to 64 do
    Alcotest.(check int64) "same (seed, index) stream" (Rng.bits64 a) (Rng.bits64 b)
  done;
  Alcotest.check_raises "negative index" (Invalid_argument "Rng.stream: negative index")
    (fun () -> ignore (Rng.stream ~seed:9 ~index:(-1)))

(* The trap stream splitting avoids: with naive [create (seed + k)]
   derivation, replica k of seed s collides with replica k-1 of seed
   s+1. Adjacent-seed portfolios must explore genuinely different
   trajectories on every replica. *)
let test_rng_stream_adjacent_seeds_diverge () =
  let prefix g = List.init 32 (fun _ -> Rng.bits64 g) in
  for seed = 1 to 8 do
    for k = 0 to 3 do
      let here = prefix (Rng.stream ~seed ~index:k) in
      for k' = 0 to 3 do
        let there = prefix (Rng.stream ~seed:(seed + 1) ~index:k') in
        if here = there then
          Alcotest.failf "stream (%d,%d) collides with (%d,%d)" seed k (seed + 1) k'
      done
    done
  done

let test_rng_stream_indices_diverge () =
  let prefix g = List.init 32 (fun _ -> Rng.bits64 g) in
  let streams = List.init 6 (fun k -> (k, prefix (Rng.stream ~seed:5 ~index:k))) in
  List.iter
    (fun (i, a) ->
      List.iter
        (fun (j, b) ->
          if i < j && a = b then Alcotest.failf "streams %d and %d coincide" i j)
        streams)
    streams

let test_rng_shuffle_permutes =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200 QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let arr = Array.init 30 Fun.id in
      Rng.shuffle_in_place rng arr;
      let sorted = Array.copy arr in
      Array.sort compare sorted;
      sorted = Array.init 30 Fun.id)

let test_rng_pick () =
  let rng = Rng.create 5 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "pick from array" true (Array.mem (Rng.pick rng arr) arr)
  done;
  Alcotest.check_raises "empty list" (Invalid_argument "Rng.pick_list: empty list") (fun () ->
      ignore (Rng.pick_list rng []))

(* --- Pqueue --- *)

let test_pqueue_ordering =
  QCheck.Test.make ~name:"pqueue pops in priority order" ~count:300
    QCheck.(list small_int)
    (fun keys ->
      let q = Pqueue.create () in
      List.iter (fun k -> Pqueue.add q k k) keys;
      let rec drain acc =
        match Pqueue.pop_min q with
        | None -> List.rev acc
        | Some (k, _) -> drain (k :: acc)
      in
      drain [] = List.sort compare keys)

let test_pqueue_interleaved () =
  let q = Pqueue.create () in
  Pqueue.add q 5 "e";
  Pqueue.add q 1 "a";
  Alcotest.(check (option (pair int string))) "min first" (Some (1, "a")) (Pqueue.pop_min q);
  Pqueue.add q 3 "c";
  Pqueue.add q 0 "z";
  Alcotest.(check (option (pair int string))) "new min" (Some (0, "z")) (Pqueue.pop_min q);
  Alcotest.(check int) "length" 2 (Pqueue.length q);
  Pqueue.clear q;
  Alcotest.(check bool) "cleared" true (Pqueue.is_empty q);
  Alcotest.(check (option (pair int string))) "empty pop" None (Pqueue.pop_min q)

let test_pqueue_grows () =
  let q = Pqueue.create () in
  for i = 1000 downto 1 do
    Pqueue.add q i i
  done;
  Alcotest.(check (option (pair int int))) "min of 1000" (Some (1, 1)) (Pqueue.pop_min q);
  Alcotest.(check int) "999 left" 999 (Pqueue.length q)

(* --- Union_find --- *)

let test_union_find_basic () =
  let uf = Union_find.create 6 in
  Alcotest.(check int) "initial sets" 6 (Union_find.count uf);
  Union_find.union uf 0 1;
  Union_find.union uf 2 3;
  Union_find.union uf 1 2;
  Alcotest.(check bool) "0~3" true (Union_find.same uf 0 3);
  Alcotest.(check bool) "0!~4" false (Union_find.same uf 0 4);
  Alcotest.(check int) "sets after unions" 3 (Union_find.count uf)

let test_union_find_idempotent () =
  let uf = Union_find.create 3 in
  Union_find.union uf 0 1;
  Union_find.union uf 0 1;
  Union_find.union uf 1 0;
  Alcotest.(check int) "repeat unions" 2 (Union_find.count uf)

(* --- Interval --- *)

let iv = QCheck.map (fun (a, b) -> Interval.make (min a b) (max a b)) QCheck.(pair (int_range 0 60) (int_range 0 60))

let test_interval_hull_covers =
  QCheck.Test.make ~name:"hull covers both intervals" ~count:300 (QCheck.pair iv iv)
    (fun (a, b) ->
      let h = Interval.hull a b in
      Interval.covers h a && Interval.covers h b)

let test_interval_overlap_symmetric =
  QCheck.Test.make ~name:"overlaps is symmetric" ~count:300 (QCheck.pair iv iv) (fun (a, b) ->
      Interval.overlaps a b = Interval.overlaps b a)

let test_interval_basic () =
  let a = Interval.make 2 5 in
  Alcotest.(check int) "length" 4 (Interval.length a);
  Alcotest.(check bool) "contains lo" true (Interval.contains a 2);
  Alcotest.(check bool) "contains hi" true (Interval.contains a 5);
  Alcotest.(check bool) "not contains" false (Interval.contains a 6);
  Alcotest.(check bool) "adjacent" true (Interval.adjacent a (Interval.make 6 8));
  Alcotest.(check bool) "not adjacent when overlapping" false
    (Interval.adjacent a (Interval.make 5 8));
  Alcotest.(check string) "to_string" "[2,5]" (Interval.to_string a);
  let p = Interval.point 3 in
  Alcotest.(check int) "point length" 1 (Interval.length p);
  let c = Interval.clamp (Interval.make 0 10) ~lo:4 ~hi:7 in
  Alcotest.(check int) "clamp lo" 4 c.Interval.lo;
  Alcotest.(check int) "clamp hi" 7 c.Interval.hi

let test_interval_covers_transitive =
  QCheck.Test.make ~name:"covers is transitive via hull" ~count:300 (QCheck.pair iv iv)
    (fun (a, b) -> if Interval.covers a b then Interval.hull a b = a else true)

(* --- Stats --- *)

let test_stats_against_direct =
  QCheck.Test.make ~name:"welford matches direct mean/variance" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 2 40) (float_range (-100.) 100.))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0.0 xs /. n in
      let var = List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs /. n in
      Float.abs (Stats.mean s -. mean) < 1e-9 && Float.abs (Stats.variance s -. var) < 1e-6)

let test_stats_minmax_reset () =
  let s = Stats.create () in
  Stats.add s 3.0;
  Stats.add s (-1.0);
  Stats.add s 7.0;
  Alcotest.(check (float 1e-12)) "min" (-1.0) (Stats.min_value s);
  Alcotest.(check (float 1e-12)) "max" 7.0 (Stats.max_value s);
  Alcotest.(check int) "count" 3 (Stats.count s);
  Stats.reset s;
  Alcotest.(check int) "reset count" 0 (Stats.count s);
  Alcotest.(check (float 1e-12)) "reset mean" 0.0 (Stats.mean s)

let test_stats_mean_of () =
  Alcotest.(check (float 1e-12)) "mean_of empty" 0.0 (Stats.mean_of []);
  Alcotest.(check (float 1e-12)) "mean_of" 2.0 (Stats.mean_of [ 1.0; 2.0; 3.0 ])

(* --- Journal --- *)

let test_journal_rollback_order () =
  let trace = ref [] in
  let j = Journal.create () in
  Journal.record j (fun () -> trace := 1 :: !trace);
  Journal.record j (fun () -> trace := 2 :: !trace);
  Journal.record j (fun () -> trace := 3 :: !trace);
  Journal.rollback j;
  (* Reverse order of recording: 3 first. *)
  Alcotest.(check (list int)) "reverse order" [ 1; 2; 3 ] !trace;
  Alcotest.(check int) "empty after rollback" 0 (Journal.depth j)

let test_journal_commit () =
  let x = ref 0 in
  let j = Journal.create () in
  x := 5;
  Journal.record j (fun () -> x := 0);
  Journal.commit j;
  Journal.rollback j;
  Alcotest.(check int) "commit forgets" 5 !x

let test_journal_rollback_to () =
  let x = ref [] in
  let j = Journal.create () in
  Journal.record j (fun () -> x := 1 :: !x);
  let m = Journal.mark j in
  Journal.record j (fun () -> x := 2 :: !x);
  Journal.record j (fun () -> x := 3 :: !x);
  Journal.rollback_to j m;
  Alcotest.(check (list int)) "only the tail rolled back" [ 2; 3 ] !x;
  Alcotest.(check int) "depth back at mark" m (Journal.depth j);
  Journal.rollback j;
  Alcotest.(check (list int)) "rest rolled back" [ 1; 2; 3 ] !x

let test_journal_restores_state =
  QCheck.Test.make ~name:"journaled array writes roll back exactly" ~count:200
    QCheck.(list (pair (int_range 0 9) (int_range 0 99)))
    (fun writes ->
      let arr = Array.init 10 Fun.id in
      let original = Array.copy arr in
      let j = Journal.create () in
      List.iter
        (fun (i, v) ->
          let old = arr.(i) in
          arr.(i) <- v;
          Journal.record j (fun () -> arr.(i) <- old))
        writes;
      Journal.rollback j;
      arr = original)

(* --- Bitset --- *)

let check_ok name = function
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %s" name e

let test_bitset_basic () =
  let s = Bitset.create ~capacity:10 in
  Alcotest.(check int) "capacity" 10 (Bitset.capacity s);
  Alcotest.(check bool) "fresh add" true (Bitset.add s 3);
  Alcotest.(check bool) "duplicate add" false (Bitset.add s 3);
  Alcotest.(check bool) "add another" true (Bitset.add s 7);
  Alcotest.(check bool) "mem" true (Bitset.mem s 3);
  Alcotest.(check bool) "not mem" false (Bitset.mem s 4);
  Alcotest.(check int) "cardinality" 2 (Bitset.cardinality s);
  Alcotest.(check (list int)) "ascending order" [ 3; 7 ] (Bitset.to_list s);
  Alcotest.(check bool) "remove" true (Bitset.remove s 3);
  Alcotest.(check bool) "remove absent" false (Bitset.remove s 3);
  Alcotest.(check (list int)) "after removal" [ 7 ] (Bitset.to_list s);
  Bitset.clear s;
  Alcotest.(check int) "cleared" 0 (Bitset.cardinality s);
  check_ok "bitset check" (Bitset.check s)

let test_bitset_rollback =
  QCheck.Test.make ~name:"bitset journal rollback restores set exactly" ~count:300
    QCheck.(pair (list (pair bool (int_range 0 19))) (list (pair bool (int_range 0 19))))
    (fun (setup, ops) ->
      let s = Bitset.create ~capacity:20 in
      List.iter (fun (add, i) -> ignore (if add then Bitset.add s i else Bitset.remove s i)) setup;
      let before = Bitset.to_list s in
      let j = Journal.create () in
      List.iter
        (fun (add, i) -> ignore (if add then Bitset.add ~j s i else Bitset.remove ~j s i))
        ops;
      (match Bitset.check s with Ok () -> () | Error e -> QCheck.Test.fail_report e);
      Journal.rollback j;
      (match Bitset.check s with Ok () -> () | Error e -> QCheck.Test.fail_report e);
      Bitset.to_list s = before)

(* --- Iqueue --- *)

let test_iqueue_ordering () =
  let q = Iqueue.create ~capacity:10 in
  Iqueue.add q 4 ~key:2;
  Iqueue.add q 1 ~key:5;
  Iqueue.add q 7 ~key:2;
  Iqueue.add q 0 ~key:9;
  (* Key descending, id descending on ties. *)
  Alcotest.(check (list int)) "queue order" [ 0; 1; 7; 4 ] (Iqueue.to_list q);
  Iqueue.add q 7 ~key:6;  (* re-key repositions *)
  Alcotest.(check (list int)) "re-keyed order" [ 0; 7; 1; 4 ] (Iqueue.to_list q);
  Alcotest.(check int) "key lookup" 6 (Iqueue.key q 7);
  Alcotest.(check bool) "remove" true (Iqueue.remove q 1);
  Alcotest.(check bool) "remove absent" false (Iqueue.remove q 1);
  Alcotest.(check (list int)) "after removal" [ 0; 7; 4 ] (Iqueue.to_list q);
  Alcotest.(check int) "length" 3 (Iqueue.length q);
  check_ok "iqueue check" (Iqueue.check q)

let test_iqueue_canonical =
  QCheck.Test.make ~name:"iqueue order is canonical (insertion-history independent)" ~count:200
    QCheck.(list (pair (int_range 0 14) (int_range 0 9)))
    (fun pairs ->
      (* Last write wins per id; any insertion order yields one layout. *)
      let q1 = Iqueue.create ~capacity:15 and q2 = Iqueue.create ~capacity:15 in
      List.iter (fun (id, key) -> Iqueue.add q1 id ~key) pairs;
      List.iter (fun (id, key) -> Iqueue.add q2 id ~key) (List.rev pairs);
      let final = Hashtbl.create 16 in
      List.iter (fun (id, key) -> Hashtbl.replace final id key) pairs;
      Hashtbl.iter (fun id key -> Iqueue.add q2 id ~key) final;
      (match Iqueue.check q1 with Ok () -> () | Error e -> QCheck.Test.fail_report e);
      Iqueue.to_list q1 = Iqueue.to_list q2)

let test_iqueue_rollback =
  QCheck.Test.make ~name:"iqueue journal rollback restores order bit-for-bit" ~count:300
    QCheck.(
      pair
        (list (pair (int_range 0 14) (int_range 0 9)))
        (list (pair bool (pair (int_range 0 14) (int_range 0 9)))))
    (fun (setup, ops) ->
      let q = Iqueue.create ~capacity:15 in
      List.iter (fun (id, key) -> Iqueue.add q id ~key) setup;
      let before = List.map (fun id -> (id, Iqueue.key q id)) (Iqueue.to_list q) in
      let j = Journal.create () in
      List.iter
        (fun (add, (id, key)) ->
          if add then Iqueue.add ~j q id ~key else ignore (Iqueue.remove ~j q id))
        ops;
      (match Iqueue.check q with Ok () -> () | Error e -> QCheck.Test.fail_report e);
      Journal.rollback j;
      (match Iqueue.check q with Ok () -> () | Error e -> QCheck.Test.fail_report e);
      List.map (fun id -> (id, Iqueue.key q id)) (Iqueue.to_list q) = before)

(* --- Table --- *)

let test_table_render () =
  let out =
    Table.render ~align:[ Table.Left; Table.Right ] ~header:[ "name"; "value" ]
      [ [ "a"; "1" ]; [ "long-name"; "22" ] ]
  in
  let lines = String.split_on_char '\n' out in
  (match lines with
  | header :: rule :: _ ->
    Alcotest.(check bool) "header has both columns" true
      (String.length header >= String.length "name  value");
    Alcotest.(check bool) "rule is dashes" true (String.for_all (fun c -> c = '-' || c = ' ') rule)
  | _ -> Alcotest.fail "too few lines");
  Alcotest.(check int) "line count: header+rule+2 rows+trailing" 5 (List.length lines)

let () =
  Alcotest.run "spr_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "int covers residues" `Quick test_rng_int_covers;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "stream 0 is create" `Quick test_rng_stream_zero_is_create;
          Alcotest.test_case "stream determinism" `Quick test_rng_stream_determinism;
          Alcotest.test_case "adjacent seeds diverge" `Quick
            test_rng_stream_adjacent_seeds_diverge;
          Alcotest.test_case "stream indices diverge" `Quick test_rng_stream_indices_diverge;
          Alcotest.test_case "pick" `Quick test_rng_pick;
          qtest test_rng_int_bounds;
          qtest test_rng_shuffle_permutes;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "interleaved ops" `Quick test_pqueue_interleaved;
          Alcotest.test_case "growth" `Quick test_pqueue_grows;
          qtest test_pqueue_ordering;
        ] );
      ( "union_find",
        [
          Alcotest.test_case "basic" `Quick test_union_find_basic;
          Alcotest.test_case "idempotent unions" `Quick test_union_find_idempotent;
        ] );
      ( "interval",
        [
          Alcotest.test_case "basics" `Quick test_interval_basic;
          qtest test_interval_hull_covers;
          qtest test_interval_overlap_symmetric;
          qtest test_interval_covers_transitive;
        ] );
      ( "stats",
        [
          Alcotest.test_case "min/max/reset" `Quick test_stats_minmax_reset;
          Alcotest.test_case "mean_of" `Quick test_stats_mean_of;
          qtest test_stats_against_direct;
        ] );
      ( "journal",
        [
          Alcotest.test_case "rollback order" `Quick test_journal_rollback_order;
          Alcotest.test_case "commit" `Quick test_journal_commit;
          Alcotest.test_case "rollback_to mark" `Quick test_journal_rollback_to;
          qtest test_journal_restores_state;
        ] );
      ( "bitset",
        [ Alcotest.test_case "basics" `Quick test_bitset_basic; qtest test_bitset_rollback ] );
      ( "iqueue",
        [
          Alcotest.test_case "retry order" `Quick test_iqueue_ordering;
          qtest test_iqueue_canonical;
          qtest test_iqueue_rollback;
        ] );
      ("table", [ Alcotest.test_case "render" `Quick test_table_render ]);
    ]
