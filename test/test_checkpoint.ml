(* Checkpoint save/restore and ECO edits. *)

module Cp = Spr_core.Checkpoint
module Eco = Spr_core.Eco
module Rs = Spr_route.Route_state
module Router = Spr_route.Router
module P = Spr_layout.Placement
module Arch = Spr_arch.Arch
module Nl = Spr_netlist.Netlist
module Gen = Spr_netlist.Generator
module Rng = Spr_util.Rng
module Sta = Spr_timing.Sta

let qtest = QCheck_alcotest.to_alcotest

let routed_state ?(n_cells = 60) ?(seed = 5) ?(tracks = 22) () =
  let nl = Gen.generate (Gen.default ~n_cells) ~seed in
  let arch = Arch.size_for ~tracks nl in
  let place = P.create_exn arch nl ~rng:(Rng.create (seed + 1)) in
  let st = Rs.create place in
  Router.route_all st;
  (st, nl)

(* --- Checkpoint --- *)

let test_roundtrip () =
  let st, nl = routed_state () in
  let text = Cp.to_string st in
  match Cp.of_string nl text with
  | Error e -> Alcotest.failf "restore failed: %s" e
  | Ok st2 ->
    Alcotest.(check string) "identical routing state" (Rs.snapshot st) (Rs.snapshot st2);
    (* placements agree *)
    for c = 0 to Nl.n_cells nl - 1 do
      Alcotest.(check bool) "same slot" true
        (P.slot_of (Rs.place st) c = P.slot_of (Rs.place st2) c);
      Alcotest.(check int) "same pinmap"
        (P.pinmap_index (Rs.place st) c)
        (P.pinmap_index (Rs.place st2) c)
    done

let test_roundtrip_many =
  QCheck.Test.make ~name:"checkpoint round-trips arbitrary layouts" ~count:10 QCheck.small_int
    (fun seed ->
      let st, nl = routed_state ~seed:(seed mod 13) () in
      match Cp.of_string nl (Cp.to_string st) with
      | Error _ -> false
      | Ok st2 -> Rs.snapshot st = Rs.snapshot st2)

let test_roundtrip_timing_identical () =
  let st, nl = routed_state () in
  let sta = Sta.create Spr_timing.Delay_model.default st in
  match Cp.of_string nl (Cp.to_string st) with
  | Error e -> Alcotest.fail e
  | Ok st2 ->
    let sta2 = Sta.create Spr_timing.Delay_model.default st2 in
    Alcotest.(check (float 1e-9)) "same critical delay" (Sta.critical_delay sta)
      (Sta.critical_delay sta2)

let test_file_roundtrip () =
  let st, nl = routed_state () in
  let path = Filename.temp_file "spr_ckpt" ".txt" in
  Cp.save st path;
  let restored = Cp.load nl path in
  Sys.remove path;
  match restored with
  | Error e -> Alcotest.fail e
  | Ok st2 -> Alcotest.(check string) "file roundtrip" (Rs.snapshot st) (Rs.snapshot st2)

let test_design_mismatch () =
  let st, _ = routed_state ~n_cells:60 () in
  let other = Gen.generate (Gen.default ~n_cells:80) ~seed:9 in
  match Cp.of_string other (Cp.to_string st) with
  | Error e -> Alcotest.(check bool) "mentions mismatch" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "mismatched design accepted"

let test_corrupt_inputs () =
  let st, nl = routed_state () in
  let text = Cp.to_string st in
  (* truncation *)
  (match Cp.of_string nl (String.sub text 0 (String.length text / 2)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated checkpoint accepted");
  (* garbage line *)
  (match Cp.of_string nl ("garbage here\n" ^ text) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  (* double-claimed spine: duplicate the first vroute line *)
  let lines = String.split_on_char '\n' text in
  let vlines = List.filter (fun l -> String.length l > 6 && String.sub l 0 6 = "vroute") lines in
  match vlines with
  | [] -> ()
  | v :: _ -> (
    let doubled =
      String.concat "\n"
        (List.concat_map (fun l -> if l = v then [ l; l ] else [ l ]) lines)
    in
    match Cp.of_string nl doubled with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "doubled vroute accepted")

let test_fuzzed_checkpoints_never_invalid =
  (* Randomly drop or duplicate lines: the loader must either reject the
     text or produce a state that passes full validation. *)
  QCheck.Test.make ~name:"fuzzed checkpoints load as Error or valid state" ~count:40
    QCheck.small_int (fun seed ->
      let st, nl = routed_state () in
      let text = Cp.to_string st in
      let rng = Rng.create seed in
      let lines = String.split_on_char '\n' text in
      let mutated =
        List.concat_map
          (fun line ->
            match Rng.int rng 12 with
            | 0 -> []  (* drop *)
            | 1 -> [ line; line ]  (* duplicate *)
            | _ -> [ line ])
          lines
      in
      match Cp.of_string nl (String.concat "\n" mutated) with
      | Error _ -> true
      | Ok st2 -> ( match Rs.check st2 with Ok () -> true | Error _ -> false))

(* --- v2 snapshots: adversarial inputs and rotation fallback --- *)

module Tool = Spr_core.Tool
module Crash = Spr_check.Crash

let rec rmrf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rmrf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(* An interrupted run leaves a rotation of real v2 snapshots behind. *)
let interrupted_run_dir name =
  let nl = Gen.generate (Gen.default ~n_cells:40) ~seed:3 in
  let arch = Arch.size_for ~tracks:16 nl in
  let dir = "v2-" ^ name in
  rmrf dir;
  let config =
    Tool.Config.(
      default |> with_seed 3
      |> with_anneal
           {
             (Spr_anneal.Engine.default_config ~n:40) with
             Spr_anneal.Engine.moves_per_temp = 120;
             warmup_moves = 120;
             max_temperatures = 8;
           }
      |> with_run_dir dir |> with_max_moves 400)
  in
  let r = Tool.run_exn ~config arch nl in
  (match r.Tool.status with
  | Tool.Interrupted _ -> ()
  | Tool.Completed -> Alcotest.fail "setup run unexpectedly completed");
  (dir, nl, arch, config)

let read_file path =
  match Spr_util.Persist.read_file path with
  | Ok text -> text
  | Error e -> Alcotest.failf "%s: %s" path e

let newest_snapshot dir =
  match Cp.V2.snapshot_files dir with
  | [] -> Alcotest.fail "no snapshots written"
  | (seq, path) :: _ -> (seq, path)

let expect_error label = function
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: corrupted snapshot accepted" label

let has_substring ~sub s =
  let n = String.length sub and m = String.length s in
  let rec scan i = i + n <= m && (String.sub s i n = sub || scan (i + 1)) in
  n = 0 || scan 0

let test_v2_roundtrip () =
  let dir, nl, _, _ = interrupted_run_dir "roundtrip" in
  let _, path = newest_snapshot dir in
  (match Cp.V2.load_file nl path with
  | Error e -> Alcotest.failf "load_file: %s" e
  | Ok (payload, current) -> (
    (* Re-encoding the decoded state must describe the same run state.
       The embedded current-layout block is order-insensitive (restore
       replays claims, which canonicalizes line order), so compare
       canonical snapshots; every other payload field — floats, RNG
       stream, best-layout bytes — must survive exactly. *)
    match Cp.V2.decode nl (Cp.V2.encode payload ~current) with
    | Error e -> Alcotest.failf "re-decode: %s" e
    | Ok (payload2, current2) ->
      Alcotest.(check bool) "payload survives re-encode" true (payload = payload2);
      Alcotest.(check string) "current layout survives re-encode" (Rs.snapshot current)
        (Rs.snapshot current2);
      (match Cp.of_string nl payload.Cp.V2.best_layout with
      | Error e -> Alcotest.failf "embedded best layout: %s" e
      | Ok _ -> ())));
  rmrf dir

let test_v2_adversarial_inputs () =
  let dir, nl, _, _ = interrupted_run_dir "adversarial" in
  let _, path = newest_snapshot dir in
  let text = read_file path in
  expect_error "empty file" (Cp.V2.decode nl "");
  expect_error "header only" (Cp.V2.decode nl (String.sub text 0 (String.index text '\n' + 1)));
  expect_error "truncated mid-payload"
    (Cp.V2.decode nl (String.sub text 0 (String.length text / 2)));
  expect_error "truncated by one byte"
    (Cp.V2.decode nl (String.sub text 0 (String.length text - 1)));
  let flip at s =
    let b = Bytes.of_string s in
    Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor 0xFF));
    Bytes.to_string b
  in
  expect_error "flipped header byte" (Cp.V2.decode nl (flip 4 text));
  expect_error "flipped body byte" (Cp.V2.decode nl (flip (String.length text / 2) text));
  expect_error "flipped final byte" (Cp.V2.decode nl (flip (String.length text - 2) text));
  (* A v2 file fed to the v1 loader must be a clean version error. *)
  (match Cp.of_string nl text with
  | Error e ->
    Alcotest.(check bool) "v1 loader names the version" true (has_substring ~sub:"version" e)
  | Ok _ -> Alcotest.fail "v1 loader accepted a v2 snapshot");
  (* And a v1 layout fed to the v2 loader likewise. *)
  let st, _ = routed_state ~n_cells:40 ~seed:3 ~tracks:16 () in
  expect_error "v1 text in v2 loader" (Cp.V2.decode nl (Cp.to_string st));
  rmrf dir

let test_v2_rotation_fallback () =
  let dir, nl, _, _ = interrupted_run_dir "fallback" in
  let files = Cp.V2.snapshot_files dir in
  if List.length files < 2 then Alcotest.fail "setup run left fewer than 2 snapshots";
  let newest_seq, newest_path = List.nth files 0 in
  let second_seq, _ = List.nth files 1 in
  (* Truncate the newest snapshot, as a crash mid-write (without the
     atomic rename) would: the loader must fall back to the previous
     rotation entry. *)
  Crash.truncate_file newest_path ~keep:200;
  (match Cp.V2.load_latest nl ~dir with
  | Error e -> Alcotest.failf "no fallback after truncation: %s" e
  | Ok loaded -> Alcotest.(check int) "fell back one entry" second_seq loaded.Cp.V2.seq);
  (* Restore-by-rerun is overkill; corrupt the (already truncated)
     newest differently and make sure fallback still skips it. *)
  Crash.flip_byte newest_path ~at:50;
  (match Cp.V2.load_latest nl ~dir with
  | Error e -> Alcotest.failf "no fallback after byte flip: %s" e
  | Ok loaded -> Alcotest.(check int) "still falls back" second_seq loaded.Cp.V2.seq);
  (* Damage every snapshot: the loader must report, not raise, and the
     message must account for each file. *)
  List.iter (fun (_, path) -> Crash.truncate_file path ~keep:60) files;
  (match Cp.V2.load_latest nl ~dir with
  | Error e ->
    List.iter
      (fun (seq, _) ->
        Alcotest.(check bool)
          (Printf.sprintf "error mentions snapshot %d" seq)
          true
          (has_substring ~sub:(Printf.sprintf "snap-%08d.ckpt" seq) e))
      files
  | Ok _ -> Alcotest.fail "fully corrupted rotation accepted");
  ignore newest_seq;
  rmrf dir

(* Replica-tagged rotations share a run directory without seeing each
   other (or the serial scan). *)
let test_v2_replica_isolation () =
  let dir = "v2-replicas" in
  rmrf dir;
  Spr_util.Persist.ensure_dir dir;
  Alcotest.(check string) "replica path shape"
    (Filename.concat dir "snap-r2-00000007.ckpt")
    (Cp.V2.snapshot_path ~replica:2 dir 7);
  (* fake rotation entries are enough to test the scan *)
  let touch path = Spr_util.Persist.atomic_write path "stub" in
  touch (Cp.V2.snapshot_path dir 3);
  touch (Cp.V2.snapshot_path ~replica:0 dir 1);
  touch (Cp.V2.snapshot_path ~replica:0 dir 2);
  touch (Cp.V2.snapshot_path ~replica:1 dir 9);
  Alcotest.(check (list int)) "serial scan sees only untagged" [ 3 ]
    (List.map fst (Cp.V2.snapshot_files dir));
  Alcotest.(check (list int)) "replica 0 rotation" [ 2; 1 ]
    (List.map fst (Cp.V2.snapshot_files ~replica:0 dir));
  Alcotest.(check (list int)) "replica 1 rotation" [ 9 ]
    (List.map fst (Cp.V2.snapshot_files ~replica:1 dir));
  Alcotest.(check int) "replica next_seq" 3 (Cp.V2.next_seq ~replica:0 dir);
  Alcotest.(check int) "serial next_seq" 4 (Cp.V2.next_seq dir);
  Alcotest.(check int) "unseen replica next_seq" 1 (Cp.V2.next_seq ~replica:7 dir);
  rmrf dir

(* --- exchange records --- *)

let sample_round =
  {
    Spr_anneal.Portfolio.xr_round = 4;
    xr_best_replica = 2;
    xr_best_metric = 17.25e9 +. 0.125;
    xr_payload = "line one\nline two\n\x00binary\xff";
  }

let test_exchange_roundtrip () =
  let text = Cp.Exchange.encode sample_round in
  (match Cp.Exchange.decode text with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok r -> Alcotest.(check bool) "identity" true (r = sample_round));
  let dir = "exch-rt" in
  rmrf dir;
  Spr_util.Persist.ensure_dir dir;
  let path = Cp.Exchange.write ~dir sample_round in
  Alcotest.(check string) "round-numbered file" (Cp.Exchange.record_path dir 4) path;
  let earlier = { sample_round with Spr_anneal.Portfolio.xr_round = 2; xr_payload = "p2" } in
  ignore (Cp.Exchange.write ~dir earlier);
  Alcotest.(check bool) "load_all sorted ascending" true
    (Cp.Exchange.load_all ~dir = [ earlier; sample_round ]);
  rmrf dir

let test_exchange_corruption () =
  let text = Cp.Exchange.encode sample_round in
  (* truncation, checksum damage, garbage: errors, never exceptions;
     load_all just skips the bad record *)
  List.iter
    (fun (label, bad) ->
      match Cp.Exchange.decode bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s accepted" label)
    [
      ("truncated", String.sub text 0 (String.length text - 3));
      ("flipped byte", String.mapi (fun i c -> if i = 30 then 'Z' else c) text);
      ("garbage", "not a record at all");
      ("empty", "");
    ];
  let dir = "exch-corrupt" in
  rmrf dir;
  Spr_util.Persist.ensure_dir dir;
  ignore (Cp.Exchange.write ~dir sample_round);
  let victim = Cp.Exchange.record_path dir 4 in
  Crash.truncate_file victim ~keep:20;
  Alcotest.(check bool) "torn record skipped" true (Cp.Exchange.load_all ~dir = []);
  rmrf dir

(* --- Eco --- *)

let make_eco () =
  let st, nl = routed_state ~tracks:26 () in
  let sta = Sta.create Spr_timing.Delay_model.default st in
  (Eco.create st sta, st, nl)

let test_eco_swap_commit () =
  let eco, st, nl = make_eco () in
  (* find two comb cells to swap *)
  let combs =
    List.filter
      (fun c ->
        Spr_netlist.Cell_kind.equal (Nl.cell nl c).Nl.kind Spr_netlist.Cell_kind.Comb)
      (List.init (Nl.n_cells nl) Fun.id)
  in
  match combs with
  | a :: b :: _ -> (
    match Eco.swap_cells eco a b with
    | Error e -> Alcotest.fail e
    | Ok delta ->
      Alcotest.(check bool) "pending" true (Eco.pending eco);
      Alcotest.(check (list int)) "moved cells" (List.sort compare [ a; b ])
        (List.sort compare delta.Eco.moved_cells);
      Alcotest.(check bool) "delay fields populated" true (delta.Eco.delay_after_ns > 0.0);
      Eco.commit eco;
      Alcotest.(check bool) "not pending after commit" false (Eco.pending eco);
      (match Rs.check st with
      | Ok () -> ()
      | Error e -> Alcotest.failf "state invalid after commit: %s" e);
      (* the swap really happened *)
      Alcotest.(check bool) "cells actually swapped" true
        (P.slot_of (Rs.place st) a <> P.slot_of (Rs.place st) b))
  | _ -> Alcotest.fail "not enough comb cells"

let test_eco_rollback_exact () =
  let eco, st, nl = make_eco () in
  let before = Rs.snapshot st in
  let delay_before = Eco.critical_delay eco in
  (match Eco.swap_cells eco 0 1 with
  | Error _ -> ()  (* an illegal pair is fine for this test *)
  | Ok _ -> Eco.rollback eco);
  Alcotest.(check string) "state restored" before (Rs.snapshot st);
  Alcotest.(check (float 1e-9)) "delay restored" delay_before (Eco.critical_delay eco);
  ignore nl

let test_eco_move_to_empty () =
  let eco, st, nl = make_eco () in
  (* find an empty interior slot *)
  let arch = Rs.arch st in
  let place = Rs.place st in
  let empty = ref None in
  for row = 1 to arch.Arch.rows - 2 do
    for col = 1 to arch.Arch.cols - 2 do
      if !empty = None && P.cell_at place { P.row; col } = None then
        empty := Some { P.row; col }
    done
  done;
  (* find a comb cell *)
  let comb =
    List.find
      (fun c ->
        Spr_netlist.Cell_kind.equal (Nl.cell nl c).Nl.kind Spr_netlist.Cell_kind.Comb)
      (List.init (Nl.n_cells nl) Fun.id)
  in
  match !empty with
  | None -> ()  (* fully packed fabric; nothing to test *)
  | Some dest -> (
    match Eco.move_cell eco ~cell:comb ~dest with
    | Error e -> Alcotest.fail e
    | Ok _ ->
      Eco.commit eco;
      Alcotest.(check bool) "cell moved" true (P.slot_of place comb = dest))

let test_eco_illegal_moves () =
  let eco, st, nl = make_eco () in
  let arch = Rs.arch st in
  (* a pad cannot move to the interior *)
  let pad =
    List.find
      (fun c -> Spr_netlist.Cell_kind.is_io (Nl.cell nl c).Nl.kind)
      (List.init (Nl.n_cells nl) Fun.id)
  in
  let interior = { P.row = arch.Arch.rows / 2; col = arch.Arch.cols / 2 } in
  (match Eco.move_cell eco ~cell:pad ~dest:interior with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "pad moved into the interior");
  (* self swap *)
  (match Eco.swap_cells eco 3 3 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "self swap accepted");
  (* same pinmap *)
  match Eco.set_pinmap eco ~cell:3 ~index:(P.pinmap_index (Rs.place st) 3) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "no-op pinmap accepted"

let test_eco_pending_guard () =
  let eco, _, _ = make_eco () in
  match Eco.swap_cells eco 0 1 with
  | Error _ -> ()
  | Ok _ -> (
    match Eco.swap_cells eco 2 3 with
    | Error _ -> Eco.rollback eco
    | Ok _ -> Alcotest.fail "second edit accepted while pending")

let test_eco_pinmap_edit () =
  let eco, st, nl = make_eco () in
  let cell = 0 in
  if P.palette_size (Rs.place st) cell >= 2 then begin
    let old_idx = P.pinmap_index (Rs.place st) cell in
    let index = (old_idx + 1) mod P.palette_size (Rs.place st) cell in
    match Eco.set_pinmap eco ~cell ~index with
    | Error e -> Alcotest.fail e
    | Ok delta ->
      Alcotest.(check (list int)) "only this cell" [ cell ] delta.Eco.moved_cells;
      Eco.commit eco;
      Alcotest.(check int) "pinmap changed" index (P.pinmap_index (Rs.place st) cell);
      match Rs.check st with
      | Ok () -> ()
      | Error e -> Alcotest.failf "state invalid: %s" e
  end;
  ignore nl

let () =
  Alcotest.run "spr_checkpoint_eco"
    [
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "timing identical after restore" `Quick
            test_roundtrip_timing_identical;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "design mismatch rejected" `Quick test_design_mismatch;
          Alcotest.test_case "corrupt inputs rejected" `Quick test_corrupt_inputs;
          qtest test_roundtrip_many;
          qtest test_fuzzed_checkpoints_never_invalid;
        ] );
      ( "checkpoint-v2",
        [
          Alcotest.test_case "encode/decode identity on a real snapshot" `Slow test_v2_roundtrip;
          Alcotest.test_case "adversarial inputs are errors, never raises" `Slow
            test_v2_adversarial_inputs;
          Alcotest.test_case "corrupt newest falls back to older rotation entry" `Slow
            test_v2_rotation_fallback;
          Alcotest.test_case "replica rotations are isolated" `Quick test_v2_replica_isolation;
        ] );
      ( "exchange",
        [
          Alcotest.test_case "record roundtrip" `Quick test_exchange_roundtrip;
          Alcotest.test_case "corruption detected" `Quick test_exchange_corruption;
        ] );
      ( "eco",
        [
          Alcotest.test_case "swap and commit" `Quick test_eco_swap_commit;
          Alcotest.test_case "rollback is exact" `Quick test_eco_rollback_exact;
          Alcotest.test_case "move to empty slot" `Quick test_eco_move_to_empty;
          Alcotest.test_case "illegal edits rejected" `Quick test_eco_illegal_moves;
          Alcotest.test_case "pending guard" `Quick test_eco_pending_guard;
          Alcotest.test_case "pinmap edit" `Quick test_eco_pinmap_edit;
        ] );
    ]
