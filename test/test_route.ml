module Rs = Spr_route.Route_state
module Router = Spr_route.Router
module Gr = Spr_route.Global_router
module Dr = Spr_route.Detail_router
module P = Spr_layout.Placement
module Arch = Spr_arch.Arch
module Nl = Spr_netlist.Netlist
module Gen = Spr_netlist.Generator
module Rng = Spr_util.Rng
module J = Spr_util.Journal
module I = Spr_util.Interval

let qtest = QCheck_alcotest.to_alcotest

let make_state ?(n_cells = 80) ?(seed = 5) ?(tracks = 16) () =
  let nl = Gen.generate (Gen.default ~n_cells) ~seed in
  let arch = Arch.size_for ~tracks nl in
  let rng = Rng.create (seed + 1) in
  let place = P.create_exn arch nl ~rng in
  (Rs.create place, nl, arch)

let check_ok st label =
  match Rs.check st with Ok () -> () | Error e -> Alcotest.failf "%s: %s" label e

(* --- fresh state --- *)

let test_fresh_state () =
  let st, nl, _ = make_state () in
  check_ok st "fresh";
  Alcotest.(check bool) "nothing routed yet" true (Rs.d_count st > 0);
  Alcotest.(check bool) "g <= d" true (Rs.g_count st <= Rs.d_count st);
  Alcotest.(check bool) "routable nets counted" true (Rs.n_routable st <= Nl.n_nets nl);
  (* every routable net is queued somewhere *)
  let in_ug = Rs.u_g st in
  Alcotest.(check int) "u_g matches g" (Rs.g_count st) (List.length in_ug)

let test_route_all_invariants =
  QCheck.Test.make ~name:"route_all leaves a valid state (random seeds)" ~count:15
    QCheck.small_int (fun seed ->
      let st, _, _ = make_state ~seed:(seed mod 19) () in
      Router.route_all st;
      match Rs.check st with Ok () -> true | Error _ -> false)

let test_route_all_makes_progress () =
  let st, _, _ = make_state ~tracks:24 () in
  let d0 = Rs.d_count st in
  Router.route_all st;
  Alcotest.(check bool) "most nets routed" true (Rs.d_count st < d0 / 4)

(* --- claims and rip-up --- *)

let count_owned st arch =
  let owned = ref 0 in
  for ch = 0 to arch.Arch.n_channels - 1 do
    for tr = 0 to arch.Arch.tracks - 1 do
      let n = Array.length (Arch.hsegments arch ~channel:ch ~track:tr) in
      for s = 0 to n - 1 do
        if Rs.hseg_owner st ~channel:ch ~track:tr ~seg:s <> -1 then incr owned
      done
    done
  done;
  for col = 0 to arch.Arch.cols - 1 do
    for vt = 0 to arch.Arch.vtracks - 1 do
      let n = Array.length (Arch.vsegments arch ~col ~vtrack:vt) in
      for s = 0 to n - 1 do
        if Rs.vseg_owner st ~col ~vtrack:vt ~seg:s <> -1 then incr owned
      done
    done
  done;
  !owned

let test_rip_all_frees_everything () =
  let st, nl, arch = make_state () in
  Router.route_all st;
  Alcotest.(check bool) "something owned" true (count_owned st arch > 0);
  let j = J.create () in
  for net = 0 to Nl.n_nets nl - 1 do
    Rs.rip_up st j net
  done;
  J.commit j;
  Alcotest.(check int) "all segments free" 0 (count_owned st arch);
  check_ok st "after mass rip"

let test_hroute_covers_span () =
  let st, nl, arch = make_state ~tracks:24 () in
  Router.route_all st;
  for net = 0 to Nl.n_nets nl - 1 do
    List.iter
      (fun (ch, hr) ->
        let segs = Arch.hsegments arch ~channel:ch ~track:hr.Rs.h_track in
        let covered = I.make segs.(hr.Rs.h_slo).I.lo segs.(hr.Rs.h_shi).I.hi in
        Alcotest.(check bool) "route covers span" true (I.covers covered hr.Rs.h_span);
        (* claimed run is owned by this net *)
        for s = hr.Rs.h_slo to hr.Rs.h_shi do
          Alcotest.(check int) "segment owner" net
            (Rs.hseg_owner st ~channel:ch ~track:hr.Rs.h_track ~seg:s)
        done)
      (Rs.h_routes st net)
  done

let test_spine_covers_channels () =
  let st, nl, arch = make_state ~tracks:24 () in
  Router.route_all st;
  let place = Rs.place st in
  for net = 0 to Nl.n_nets nl - 1 do
    match Rs.global_route st net with
    | None -> ()
    | Some vr -> (
      match P.net_channel_span place net with
      | None -> Alcotest.fail "routed net without pins"
      | Some (clo, chi) ->
        Alcotest.(check bool) "spine covers channel span" true
          (I.covers vr.Rs.v_span (I.make clo chi));
        let segs = Arch.vsegments arch ~col:vr.Rs.v_col ~vtrack:vr.Rs.v_vtrack in
        let covered = I.make segs.(vr.Rs.v_slo).I.lo segs.(vr.Rs.v_shi).I.hi in
        Alcotest.(check bool) "claimed verticals cover spine span" true
          (I.covers covered vr.Rs.v_span))
  done

let test_demands_include_spine_column () =
  let st, nl, _ = make_state ~tracks:24 () in
  Router.route_all st;
  for net = 0 to Nl.n_nets nl - 1 do
    match Rs.global_route st net with
    | None -> ()
    | Some vr ->
      List.iter
        (fun (_, span) ->
          Alcotest.(check bool) "demand reaches the spine" true (I.contains span vr.Rs.v_col))
        (Rs.h_demands st net)
  done

(* --- transactional rollback --- *)

let test_rollback_exact =
  QCheck.Test.make ~name:"rip+reroute rollback restores the exact state" ~count:25
    QCheck.small_int (fun seed ->
      let st, nl, _ = make_state ~seed:(seed mod 11) () in
      Router.route_all st;
      let before = Rs.snapshot st in
      let rng = Rng.create (seed + 7) in
      let j = J.create () in
      for _ = 1 to 20 do
        let cell = Rng.int rng (Nl.n_cells nl) in
        ignore (Router.rip_up_cell st j cell : int list);
        ignore (Router.reroute st j : int list)
      done;
      J.rollback j;
      Rs.snapshot st = before)

let test_commit_keeps_changes () =
  let st, nl, _ = make_state () in
  Router.route_all st;
  let before = Rs.snapshot st in
  let j = J.create () in
  ignore (Router.rip_up_cell st j 0 : int list);
  J.commit j;
  (* a cell always touches at least one net, so the state changed *)
  Alcotest.(check bool) "cell 0 has nets" true (Nl.nets_of_cell nl 0 <> []);
  Alcotest.(check bool) "state changed after commit" true (Rs.snapshot st <> before);
  check_ok st "after commit"

let test_nested_transactions () =
  let st, nl, _ = make_state () in
  Router.route_all st;
  let s0 = Rs.snapshot st in
  let j = J.create () in
  ignore (Router.rip_up_cell st j 1 : int list);
  let m = J.mark j in
  ignore (Router.rip_up_cell st j 2 : int list);
  J.rollback_to j m;
  ignore nl;
  J.rollback j;
  Alcotest.(check bool) "outer rollback restores" true (Rs.snapshot st = s0);
  check_ok st "after nested rollback"

(* --- incremental rerouting matches the paper's mechanics --- *)

let test_rip_queues_net () =
  let st, nl, _ = make_state ~tracks:24 () in
  Router.route_all st;
  (* pick a fully routed multi-channel net; rip its driver's cell *)
  let victim = ref (-1) in
  for net = 0 to Nl.n_nets nl - 1 do
    if !victim = -1 && Rs.is_fully_routed st net && Rs.needs_global st net then victim := net
  done;
  if !victim >= 0 then begin
    let driver = (Nl.net nl !victim).Nl.driver in
    let j = J.create () in
    let ripped = Router.rip_up_cell st j driver in
    Alcotest.(check bool) "victim among ripped" true (List.mem !victim ripped);
    Alcotest.(check bool) "victim queued for global" true (List.mem !victim (Rs.u_g st));
    Alcotest.(check bool) "victim no longer routed" false (Rs.is_fully_routed st !victim);
    (* rerouting should recover it in this uncongested fabric *)
    let routed = Router.reroute st j in
    Alcotest.(check bool) "victim rerouted" true
      (List.mem !victim routed && Rs.is_fully_routed st !victim);
    J.rollback j;
    check_ok st "after rollback"
  end

let test_failure_memoization () =
  let st, nl, _ = make_state ~tracks:16 () in
  Router.route_all st;
  match Rs.u_g st with
  | [] -> ()  (* everything routed; nothing to memoize *)
  | net :: _ ->
    (* after route_all the failure is recorded: not pending *)
    Alcotest.(check bool) "failure memoized" false (Rs.global_attempt_pending st net);
    Rs.force_retry st net;
    Alcotest.(check bool) "force_retry clears it" true (Rs.global_attempt_pending st net);
    ignore nl

let test_detail_router_prefers_low_waste () =
  (* Single channel, two tracks: one full-length segment and one
     uniformly cut track; a short net should take the low-waste track. *)
  let nl =
    let b = Nl.Builder.create () in
    let pi = Nl.Builder.add_cell b ~name:"pi" ~kind:Spr_netlist.Cell_kind.Input ~n_inputs:0 in
    let po = Nl.Builder.add_cell b ~name:"po" ~kind:Spr_netlist.Cell_kind.Output ~n_inputs:1 in
    let n = Nl.Builder.add_net b ~name:"n" ~driver:pi in
    Nl.Builder.add_sink b ~net:n ~cell:po ~pin:0;
    Nl.Builder.finish_exn b
  in
  (* rows=1 so both cells are on row 0 (perimeter); all pins in channels
     0/1 *)
  let arch =
    Arch.create ~rows:1 ~cols:12 ~tracks:4 ~hscheme:(Spr_arch.Segmentation.Uniform 3) ()
  in
  let place = P.create_exn arch nl ~rng:(Rng.create 3) in
  let st = Rs.create place in
  Router.route_all st;
  Alcotest.(check bool) "tiny net routed" true (Rs.fully_routed st);
  (* the chosen route's wastage should be bounded by a segment length *)
  List.iter
    (fun (ch, hr) ->
      let segs = Arch.hsegments arch ~channel:ch ~track:hr.Rs.h_track in
      let covered = I.make segs.(hr.Rs.h_slo).I.lo segs.(hr.Rs.h_shi).I.hi in
      let waste = I.length covered - I.length hr.Rs.h_span in
      Alcotest.(check bool) "bounded wastage" true (waste <= 4))
    (Rs.h_routes st 0)

let test_best_track_none_when_full () =
  let st, _, arch = make_state ~n_cells:40 ~tracks:2 () in
  (* claim every segment of channel 1 by hand through the public API is
     not possible, so instead check best_track on a span wider than the
     channel *)
  let too_wide = I.make 0 (arch.Arch.cols + 5) in
  Alcotest.(check bool) "no track for out-of-range span" true
    (Dr.best_track st ~channel:1 ~span:too_wide = None)

let test_global_attempt_on_trivial_net () =
  let st, nl, _ = make_state () in
  (* attempting a net not in U_G must not succeed spuriously: pick a net
     with fewer than 2 pins if one exists *)
  let j = J.create () in
  for net = 0 to Nl.n_nets nl - 1 do
    if Array.length (Nl.net nl net).Nl.sinks = 0 then
      Alcotest.(check bool) "no-op on sinkless net" false (Gr.attempt st j net)
  done

(* --- counters --- *)

let test_counts_consistent =
  QCheck.Test.make ~name:"g/d counts equal queue census" ~count:15 QCheck.small_int
    (fun seed ->
      let st, _, arch = make_state ~seed:(seed mod 23) ~tracks:12 () in
      Router.route_all st;
      let g = List.length (Rs.u_g st) in
      (* census of nets missing at least one channel *)
      let missing = Hashtbl.create 16 in
      for ch = 0 to arch.Arch.n_channels - 1 do
        List.iter (fun net -> Hashtbl.replace missing net ()) (Rs.u_d st ch)
      done;
      let d_census = Hashtbl.length missing + g in
      g = Rs.g_count st && d_census = Rs.d_count st)

(* --- deterministic retry order (paper §3.3/§3.4) --- *)

(* The spec order: estimated length (key) descending, net id descending
   on ties — computed here independently of the queue implementation. *)
let spec_order ~len queue =
  List.sort
    (fun a b ->
      let ka = len a and kb = len b in
      if ka <> kb then compare kb ka else compare b a)
    queue

let test_ug_retry_order () =
  let st, _, _ = make_state ~tracks:6 () in
  Router.route_all st;
  let q = Rs.u_g st in
  Alcotest.(check bool) "congested fabric leaves a retry queue" true (q <> []);
  let place = Rs.place st in
  Alcotest.(check (list int)) "u_g in length-desc/id-desc order"
    (spec_order ~len:(P.half_perimeter place) q)
    q;
  Alcotest.(check (list int)) "repeated enumeration is identical" q (Rs.u_g st)

let test_ud_retry_order () =
  let st, _, arch = make_state ~tracks:6 () in
  Router.route_all st;
  let seen = ref false in
  for ch = 0 to arch.Arch.n_channels - 1 do
    let q = Rs.u_d st ch in
    if q <> [] then begin
      seen := true;
      let len net = I.length (List.assoc ch (Rs.h_demands st net)) in
      Alcotest.(check (list int))
        (Printf.sprintf "u_d channel %d in span-desc/id-desc order" ch)
        (spec_order ~len q) q
    end
  done;
  Alcotest.(check bool) "some channel has a detail retry queue" true !seen

let test_retry_order_survives_rollback =
  QCheck.Test.make ~name:"rollback restores retry queues bit-for-bit" ~count:15
    QCheck.(pair small_int (int_range 0 39))
    (fun (seed, cell) ->
      let st, _, arch = make_state ~n_cells:40 ~seed:(seed mod 13) ~tracks:6 () in
      Router.route_all st;
      let ug_before = Rs.u_g st in
      let ud_before = List.init arch.Arch.n_channels (Rs.u_d st) in
      let j = J.create () in
      ignore (Router.rip_up_cell st j cell : int list);
      ignore (Router.reroute st j : int list);
      J.rollback j;
      Rs.u_g st = ug_before && List.init arch.Arch.n_channels (Rs.u_d st) = ud_before)

let test_split_reroute_equals_combined =
  QCheck.Test.make ~name:"reroute_global+reroute_detail == reroute" ~count:10
    QCheck.(pair small_int (int_range 0 39))
    (fun (seed, cell) ->
      let seed = seed mod 13 in
      let make () =
        let st, _, _ = make_state ~n_cells:40 ~seed ~tracks:10 () in
        Router.route_all st;
        let j = J.create () in
        ignore (Router.rip_up_cell st j cell : int list);
        (st, j)
      in
      let st1, j1 = make () and st2, j2 = make () in
      let combined = Router.reroute st1 j1 in
      let split =
        let g = Router.reroute_global st2 j2 in
        let d = Router.reroute_detail st2 j2 in
        List.sort_uniq compare (List.rev_append g d)
      in
      combined = split && Rs.snapshot st1 = Rs.snapshot st2)

(* --- Spr_route.Parallel: batched reroute on a domain pool --- *)

module Par = Spr_route.Parallel

let with_pool ~workers f =
  let pool = Par.Pool.create ~workers in
  Fun.protect ~finally:(fun () -> Par.Pool.shutdown pool) (fun () -> f pool)

let test_conflict_footprints () =
  let w g lo hi = Par.Window { group = g; lo; hi } in
  Alcotest.(check bool) "shared channel endpoint conflicts" true
    (Par.conflict (w 1 0 5) (w 1 5 9));
  Alcotest.(check bool) "nested spans conflict" true (Par.conflict (w 2 2 8) (w 2 4 5));
  Alcotest.(check bool) "nesting is symmetric" true (Par.conflict (w 2 4 5) (w 2 2 8));
  Alcotest.(check bool) "disjoint spans in one channel don't conflict" false
    (Par.conflict (w 1 0 3) (w 1 4 9));
  Alcotest.(check bool) "same columns, different channels never conflict" false
    (Par.conflict (w 1 0 9) (w 2 0 9));
  (* cross-row feedthroughs contend in the shared vertical fabric *)
  Alcotest.(check bool) "overlapping feedthrough windows conflict" true
    (Par.conflict (w (-1) 3 7) (w (-1) 7 12));
  Alcotest.(check bool) "vertical vs horizontal resources never conflict" false
    (Par.conflict (w (-1) 0 9) (w 0 0 9));
  Alcotest.(check bool) "Empty conflicts with nothing" false (Par.conflict Par.Empty (w 1 0 9))

let test_plan_batches () =
  let w lo hi = Par.Window { group = 0; lo; hi } in
  let batches fps queue = List.map Array.to_list (Par.plan_batches fps queue) in
  Alcotest.(check (list (list int))) "pairwise disjoint nets share one ordered batch"
    [ [ 10; 11; 12 ] ]
    (batches [| w 0 1; w 2 3; w 4 5 |] [| 10; 11; 12 |]);
  (* 0 and 2 are independent; 1 overlaps 0; 3 overlaps both 0 and 1 *)
  Alcotest.(check (list (list int))) "overlap chain splits into ordered batches"
    [ [ 0; 2 ]; [ 1 ]; [ 3 ] ]
    (batches [| w 0 2; w 1 3; w 9 9; w 2 4 |] [| 0; 1; 2; 3 |]);
  Alcotest.(check (list (list int))) "empty queue has no batches" []
    (batches [||] [||])

let test_retry_order_canonical () =
  let e ch key net = { Par.cf_channel = ch; cf_key = key; cf_net = net } in
  (* conflicts as a commit sweep would discover them: channel-major
     tail-append order, deliberately not the retry order *)
  let discovered = [ e 2 3 7; e (-1) 5 1; e 2 9 4; e (-1) 5 8; e 2 3 9 ] in
  let expect = [ e (-1) 5 8; e (-1) 5 1; e 2 9 4; e 2 3 9; e 2 3 7 ] in
  Alcotest.(check bool) "retries re-sorted to canonical position, not tail-append" true
    (Par.retry_order discovered = expect)

let run_parallel ~workers st j =
  let stats = Par.fresh_stats () in
  let go pool =
    let par = Par.create ?pool ~grain:2 st in
    Par.reroute ~stats par j
  in
  let changed = if workers <= 1 then go None else with_pool ~workers (fun p -> go (Some p)) in
  (changed, stats)

let test_parallel_equals_serial =
  QCheck.Test.make ~name:"parallel reroute == serial reroute (no pool and pool of 3)"
    ~count:10
    QCheck.(pair small_int (int_range 0 39))
    (fun (seed, cell) ->
      let seed = seed mod 13 in
      let make () =
        let st, _, _ = make_state ~n_cells:40 ~seed ~tracks:10 () in
        Router.route_all st;
        let j = J.create () in
        ignore (Router.rip_up_cell st j cell : int list);
        (st, j)
      in
      let st1, j1 = make () and st2, j2 = make () and st3, j3 = make () in
      let serial = Router.reroute st1 j1 in
      let p1, s1 = run_parallel ~workers:1 st2 j2 in
      let p3, s3 = run_parallel ~workers:3 st3 j3 in
      serial = p1 && serial = p3
      && Rs.snapshot st1 = Rs.snapshot st2
      && Rs.snapshot st1 = Rs.snapshot st3
      (* batch statistics are a function of the trajectory, not the pool *)
      && s1 = s3
      && s3.Par.s_conflicts = 0)

let test_parallel_conflict_rate_zero () =
  (* whole-design routing through the batched path: sound footprints mean
     the commit-time claim check never trips on the example circuits *)
  let st, _, _ = make_state ~n_cells:60 ~seed:3 ~tracks:12 () in
  let stats = Par.fresh_stats () in
  with_pool ~workers:4 (fun pool ->
      let par = Par.create ~pool ~grain:2 st in
      let j = J.create () in
      let config = { Router.default_config with retry_cap = max_int } in
      for _ = 1 to 3 do
        ignore (Par.reroute ~config ~stats par j : int list)
      done;
      J.commit j);
  check_ok st "batched whole-design routing";
  Alcotest.(check int) "conflict-retry rate is zero on the example circuit" 0
    stats.Par.s_conflicts;
  Alcotest.(check int) "no conflict-forced serial retries" 0 stats.Par.s_retries;
  Alcotest.(check bool) "planner actually produced multi-net batches" true
    (stats.Par.s_batches > 0 && stats.Par.s_max_batch > 1);
  (* and the result is the state serial route_all reaches *)
  let st2, _, _ = make_state ~n_cells:60 ~seed:3 ~tracks:12 () in
  Router.route_all st2;
  Alcotest.(check bool) "batched multi-pass equals serial route_all" true
    (Rs.snapshot st = Rs.snapshot st2)

let test_commit_detects_injected_conflict () =
  (* adversarial injection: two plans computed against the same empty
     fabric that claim the same vertical run; the commit must claim the
     first, flag the second, and recover it through a serial retry *)
  let st, _, _ = make_state ~n_cells:40 ~seed:1 ~tracks:10 () in
  let queue = Router.ordered_global_queue Router.default_config st in
  let plans = List.filter_map (fun net -> Option.map (fun p -> (net, p)) (Gr.plan st net)) queue in
  let collides (a : Rs.vroute) (b : Rs.vroute) =
    a.Rs.v_col = b.Rs.v_col && a.Rs.v_vtrack = b.Rs.v_vtrack
    && a.Rs.v_slo <= b.Rs.v_shi && b.Rs.v_slo <= a.Rs.v_shi
  in
  let rec find_pair = function
    | [] -> None
    | (na, pa) :: rest -> (
      match List.find_opt (fun (_, pb) -> collides pa pb) rest with
      | Some (nb, pb) -> Some ((na, pa), (nb, pb))
      | None -> find_pair rest)
  in
  match find_pair plans with
  | None -> Alcotest.fail "expected a colliding plan pair on the empty fabric"
  | Some ((na, pa), (nb, pb)) ->
    let par = Par.create st in
    let stats = Par.fresh_stats () in
    let j = J.create () in
    let routed = Par.commit_global ~stats par j [| (na, Some pa); (nb, Some pb) |] in
    Alcotest.(check int) "one commit-time conflict detected" 1 stats.Par.s_conflicts;
    Alcotest.(check int) "one conflict-forced serial retry" 1 stats.Par.s_retries;
    Alcotest.(check bool) "first plan committed as planned" true (List.mem na routed);
    check_ok st "state stays valid after conflict recovery";
    J.rollback j;
    check_ok st "conflict recovery rolls back cleanly"

(* --- determinism across --route-workers -------------------------------
   The headline contract: the worker count is an execution strategy, not
   an input. Fixed-seed whole-tool runs at workers 1/2/4 must produce
   byte-identical masked traces (all trajectory data: temps, counters,
   accepts) and identical final unrouted counts; a run killed mid-anneal
   and resumed under a different worker count must land exactly where
   the uninterrupted run lands. *)

module Tool = Spr_core.Tool
module Engine = Spr_anneal.Engine
module Trace = Spr_obs.Trace

let masked_lines events =
  String.concat "\n" (List.map (fun e -> Trace.encode_line (Trace.mask_times e)) events)

let rec rmrf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rmrf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let workers_preset ~seed =
  let nl = Gen.generate (Gen.default ~n_cells:48) ~seed in
  let arch = Arch.size_for ~tracks:18 nl in
  let n = Nl.n_cells nl in
  let config workers =
    Tool.Config.(
      default |> with_seed seed
      |> with_anneal
           {
             (Engine.default_config ~n) with
             Engine.moves_per_temp = max 150 (2 * n);
             warmup_moves = 150;
             max_temperatures = 10;
           }
      |> with_trace_recording true
      |> with_route_workers workers)
  in
  (arch, nl, config)

let test_workers_masked_traces_identical () =
  let arch, nl, config = workers_preset ~seed:21 in
  let run workers =
    let config = config workers in
    let r = Tool.run_exn ~config arch nl in
    (masked_lines (Tool.trace_events ~config nl r), r.Tool.g, r.Tool.d)
  in
  let t1, g1, d1 = run 1 in
  let t2, g2, d2 = run 2 in
  let t4, g4, d4 = run 4 in
  Alcotest.(check bool) "non-trivial trace" true (String.length t1 > 0);
  Alcotest.(check bool) "workers 1 == 2: masked traces byte-identical" true (t1 = t2);
  Alcotest.(check bool) "workers 1 == 4: masked traces byte-identical" true (t1 = t4);
  Alcotest.(check int) "workers 2: same final global unrouted" g1 g2;
  Alcotest.(check int) "workers 2: same final detail unrouted" d1 d2;
  Alcotest.(check int) "workers 4: same final global unrouted" g1 g4;
  Alcotest.(check int) "workers 4: same final detail unrouted" d1 d4

let test_workers_kill_resume () =
  let arch, nl, config = workers_preset ~seed:22 in
  let ref_dir = "route-workers-ref" and dir = "route-workers-crash" in
  rmrf ref_dir;
  rmrf dir;
  Fun.protect
    ~finally:(fun () ->
      rmrf ref_dir;
      rmrf dir)
    (fun () ->
      (* Uninterrupted reference under 2 workers; it also checkpoints so
         both runs canonicalize timing at the same boundaries. *)
      let reference =
        Tool.run_exn ~config:(Tool.Config.with_run_dir ref_dir (config 2)) arch nl
      in
      let stopped =
        Tool.run_exn
          ~config:
            Tool.Config.(
              (* Late enough that at least one temperature-boundary
                 snapshot exists, early enough to cut the run short. *)
              config 2 |> with_run_dir dir |> with_final_checkpoint false
              |> with_stop_after_accepted 300)
          arch nl
      in
      Alcotest.(check bool) "run was interrupted mid-anneal" true
        (stopped.Tool.status <> Tool.Completed);
      (* Resume under a different worker count: neither the kill nor the
         pool size may show in the final state. *)
      let resume_config = Tool.Config.with_run_dir dir (config 4) in
      let resumed =
        match Spr_core.Checkpoint.V2.load_latest nl ~dir with
        | Error e -> Alcotest.failf "no snapshot to resume from: %s" e
        | Ok loaded -> Tool.run_exn ~config:resume_config ~resume:loaded arch nl
      in
      Alcotest.(check bool) "resumed run completed" true
        (resumed.Tool.status = Tool.Completed);
      Alcotest.(check bool) "kill+resume matches uninterrupted layout" true
        (Rs.snapshot resumed.Tool.route = Rs.snapshot reference.Tool.route);
      Alcotest.(check int) "same global unrouted" reference.Tool.g resumed.Tool.g;
      Alcotest.(check int) "same detail unrouted" reference.Tool.d resumed.Tool.d;
      Alcotest.(check bool) "same critical delay" true
        (reference.Tool.critical_delay = resumed.Tool.critical_delay))

(* --- Route_stats --- *)

let test_stats_consistency () =
  let st, nl, arch = make_state ~tracks:24 () in
  Spr_route.Router.route_all st;
  let stats = Spr_route.Route_stats.collect st in
  let open Spr_route.Route_stats in
  Alcotest.(check int) "routed + unrouted = routable" (Rs.n_routable st)
    (stats.routed_nets + stats.unrouted_nets);
  Alcotest.(check bool) "wirelength positive" true (stats.horizontal_wirelength > 0);
  Alcotest.(check bool) "cross fuses >= 2 per routed net" true
    (stats.cross_antifuses >= 2 * stats.routed_nets);
  Alcotest.(check int) "one channel record per channel" arch.Arch.n_channels
    (List.length stats.channels);
  List.iter
    (fun cu ->
      Alcotest.(check bool) "used <= total len" true (cu.cu_used_len <= cu.cu_total_len);
      Alcotest.(check bool) "used <= total segs" true
        (cu.cu_used_segments <= cu.cu_total_segments);
      Alcotest.(check int) "total len = tracks * cols" (arch.Arch.tracks * arch.Arch.cols)
        cu.cu_total_len)
    stats.channels;
  Alcotest.(check bool) "vertical used <= total" true
    (stats.vertical_used <= stats.vertical_total);
  Alcotest.(check bool) "total antifuses adds up" true
    (total_antifuses stats
    = stats.horizontal_antifuses + stats.vertical_antifuses + stats.cross_antifuses);
  ignore nl

let test_stats_empty_state () =
  let st, _, _ = make_state () in
  (* nothing routed yet *)
  let stats = Spr_route.Route_stats.collect st in
  let open Spr_route.Route_stats in
  Alcotest.(check int) "nothing routed" 0 stats.routed_nets;
  Alcotest.(check int) "no wirelength" 0 stats.horizontal_wirelength;
  Alcotest.(check int) "no fuses" 0 (total_antifuses stats)

let test_stats_wirelength_matches_ownership () =
  let st, _, arch = make_state ~tracks:24 () in
  Spr_route.Router.route_all st;
  let stats = Spr_route.Route_stats.collect st in
  (* summing claimed length over the ownership map must agree when every
     owner is fully routed; partially routed nets also own segments, so
     the ownership census is an upper bound *)
  let census = ref 0 in
  for ch = 0 to arch.Arch.n_channels - 1 do
    for tr = 0 to arch.Arch.tracks - 1 do
      let segs = Arch.hsegments arch ~channel:ch ~track:tr in
      Array.iteri
        (fun s seg ->
          if Rs.hseg_owner st ~channel:ch ~track:tr ~seg:s <> -1 then
            census := !census + I.length seg)
        segs
    done
  done;
  Alcotest.(check bool) "ownership census bounds stats wirelength" true
    (stats.Spr_route.Route_stats.horizontal_wirelength <= !census)

let () =
  Alcotest.run "spr_route"
    [
      ( "state",
        [
          Alcotest.test_case "fresh state" `Quick test_fresh_state;
          Alcotest.test_case "route_all makes progress" `Quick test_route_all_makes_progress;
          Alcotest.test_case "rip all frees everything" `Quick test_rip_all_frees_everything;
          qtest test_route_all_invariants;
          qtest test_counts_consistent;
        ] );
      ( "retry order",
        [
          Alcotest.test_case "u_g deterministic order" `Quick test_ug_retry_order;
          Alcotest.test_case "u_d deterministic order" `Quick test_ud_retry_order;
          qtest test_retry_order_survives_rollback;
          qtest test_split_reroute_equals_combined;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "hroutes cover spans" `Quick test_hroute_covers_span;
          Alcotest.test_case "spines cover channel spans" `Quick test_spine_covers_channels;
          Alcotest.test_case "demands reach the spine" `Quick test_demands_include_spine_column;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "commit keeps changes" `Quick test_commit_keeps_changes;
          Alcotest.test_case "nested transactions" `Quick test_nested_transactions;
          qtest test_rollback_exact;
        ] );
      ( "stats",
        [
          Alcotest.test_case "consistency" `Quick test_stats_consistency;
          Alcotest.test_case "empty state" `Quick test_stats_empty_state;
          Alcotest.test_case "wirelength vs ownership" `Quick
            test_stats_wirelength_matches_ownership;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "conflict footprints" `Quick test_conflict_footprints;
          Alcotest.test_case "batch planner" `Quick test_plan_batches;
          Alcotest.test_case "canonical conflict-retry order" `Quick test_retry_order_canonical;
          Alcotest.test_case "conflict-retry rate zero on example" `Quick
            test_parallel_conflict_rate_zero;
          Alcotest.test_case "masked traces identical across workers 1/2/4" `Slow
            test_workers_masked_traces_identical;
          Alcotest.test_case "kill+resume under workers == uninterrupted" `Slow
            test_workers_kill_resume;
          Alcotest.test_case "commit detects injected conflict" `Quick
            test_commit_detects_injected_conflict;
          qtest test_parallel_equals_serial;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "rip queues and reroute recovers" `Quick test_rip_queues_net;
          Alcotest.test_case "failure memoization" `Quick test_failure_memoization;
          Alcotest.test_case "detail prefers low waste" `Quick test_detail_router_prefers_low_waste;
          Alcotest.test_case "best_track none for oversize span" `Quick test_best_track_none_when_full;
          Alcotest.test_case "global attempt on sinkless nets" `Quick test_global_attempt_on_trivial_net;
        ] );
    ]
