(* Tests for the spr serve job service: framing and protocol codecs,
   the durable job store, and end-to-end daemon behaviour driven
   through the real spr binary — worker crash isolation, adversarial
   socket input, client disconnects, admission control, graceful
   drain, and the headline property: a daemon killed with -9 mid-job
   and restarted finishes the job bit-identically to a service that
   was never killed. *)

module Frame = Spr_serve.Frame
module Protocol = Spr_serve.Protocol
module Job = Spr_serve.Job
module Client = Spr_serve.Client
module Json = Spr_obs.Json
module Trace = Spr_obs.Trace

let spr =
  Filename.concat (Filename.dirname Sys.executable_name) (Filename.concat ".." "bin/spr_cli.exe")

let rec rmrf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rmrf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(* --- framing --- *)

let test_frame_roundtrip () =
  let msgs =
    [
      Json.Null;
      Json.Obj [ ("a", Json.Int 1); ("b", Json.String "x\ny") ];
      Json.List [ Json.Float 1.5; Json.Bool true ];
    ]
  in
  let wire = String.concat "" (List.map Frame.encode msgs) in
  (* feed the whole stream one byte at a time: frame boundaries must
     not depend on read boundaries *)
  let dec = Frame.decoder () in
  let got = ref [] in
  String.iter
    (fun ch ->
      Frame.feed dec (String.make 1 ch);
      let rec drain () =
        match Frame.next dec with
        | `Frame j ->
          got := j :: !got;
          drain ()
        | `Need_more -> ()
        | `Corrupt msg -> Alcotest.failf "corrupt on valid stream: %s" msg
      in
      drain ())
    wire;
  Alcotest.(check int) "all frames decoded" (List.length msgs) (List.length !got);
  List.iter2
    (fun want got -> Alcotest.(check string) "payload" (Json.to_string want) (Json.to_string got))
    msgs (List.rev !got)

let test_frame_adversarial () =
  let rng = Spr_util.Rng.create 7 in
  let cases = Spr_check.Service.garbage_frames ~rng ~n:200 in
  List.iter
    (fun bytes ->
      let dec = Frame.decoder () in
      Frame.feed dec bytes;
      (* must never raise; once corrupt, stays corrupt *)
      match Frame.next dec with
      | `Corrupt _ -> (
        Frame.feed dec (Frame.encode Json.Null);
        match Frame.next dec with
        | `Corrupt _ -> ()
        | _ -> Alcotest.fail "corrupt decoder resynchronized")
      | `Need_more | `Frame _ -> ())
    cases

(* --- protocol codecs --- *)

let roundtrip_response r =
  match Protocol.response_of_json (Protocol.response_to_json r) with
  | Error e -> Alcotest.failf "response did not round-trip: %s" e
  | Ok r' ->
    Alcotest.(check string) "response round trip"
      (Json.to_string (Protocol.response_to_json r))
      (Json.to_string (Protocol.response_to_json r'))

let test_protocol_roundtrip () =
  let spec = { Job.default_spec with Job.circuit = Some "s1"; label = "t" } in
  (match Protocol.request_of_json (Protocol.request_to_json (Protocol.Submit spec)) with
  | Ok (Protocol.Submit s) -> Alcotest.(check string) "spec label" "t" s.Job.label
  | Ok _ -> Alcotest.fail "wrong request decoded"
  | Error e -> Alcotest.failf "submit round trip: %s" e);
  List.iter roundtrip_response
    [
      Protocol.Accepted "job-00000001";
      Protocol.Rejected (Protocol.Overloaded { queued = 3; backoff_s = 12.5 });
      Protocol.Rejected Protocol.Draining;
      Protocol.Rejected (Protocol.Invalid "no");
      Protocol.Job_done
        { id = "job-00000001"; status = "completed"; report = Some (Json.Obj [ ("g", Json.Int 0) ]) };
      Protocol.Job_failed { id = "j"; error = "worker killed by SIGKILL" };
      Protocol.Job_parked { id = "j"; message = "draining" };
      Protocol.Job_cancelled "j";
      Protocol.Jobs_list
        [
          {
            Protocol.row_id = "job-00000001";
            row_label = "s1";
            row_state = "queued";
            row_submitted_at = 1.0;
            row_updated_at = 2.0;
            row_pid = Some 42;
          };
        ];
      Protocol.Error "nope";
      Protocol.Pong;
    ];
  (* malformed inputs are structured errors, never raises *)
  List.iter
    (fun j ->
      match Protocol.request_of_json j with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "malformed request decoded")
    [ Json.Null; Json.Obj [ ("req", Json.Int 3) ]; Json.Obj [ ("req", Json.String "nope") ] ]

(* --- job store --- *)

let test_job_store () =
  let state_dir = "serve-store" in
  rmrf state_dir;
  let spec = { Job.default_spec with Job.circuit = Some "s1"; label = "a" } in
  (match Job.validate_spec spec with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "valid spec rejected: %s" e);
  (match Job.validate_spec { spec with Job.circuit = None } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "spec without a design accepted");
  (match Job.validate_spec { spec with Job.effort = "heroic"; tracks = 0 } with
  | Error e ->
    Alcotest.(check bool) "both problems reported" true
      (String.length e > 10 && String.contains e ';')
  | Ok _ -> Alcotest.fail "bad effort/tracks accepted");
  let a = Job.create ~state_dir ~spec ~now:1.0 in
  let b = Job.create ~state_dir ~spec:{ spec with Job.label = "b" } ~now:2.0 in
  Alcotest.(check string) "sequential ids" "job-00000002" b.Job.id;
  a.Job.state <- Job.Running 1234;
  Job.save ~state_dir a;
  (* a malformed record is a diagnostic, not a crash, and never trusted *)
  let cdir = Job.dir ~state_dir "job-00000003" in
  Spr_util.Persist.ensure_dir cdir;
  let oc = open_out (Filename.concat cdir "job.json") in
  output_string oc "{not json";
  close_out oc;
  let jobs, bad = Job.scan ~state_dir in
  Alcotest.(check int) "two good jobs" 2 (List.length jobs);
  Alcotest.(check int) "one diagnostic" 1 (List.length bad);
  (match jobs with
  | [ a'; b' ] ->
    Alcotest.(check bool) "running state round-trips" true (a'.Job.state = Job.Running 1234);
    Alcotest.(check string) "label round-trips" "b" b'.Job.spec.Job.label
  | _ -> Alcotest.fail "scan order");
  rmrf state_dir

(* --- end-to-end helpers --- *)

let start_daemon ?(workers = 2) ?(max_queue = 16) state_dir =
  Spr_util.Persist.ensure_dir state_dir;
  let log =
    Unix.openfile
      (Filename.concat state_dir "daemon.log")
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
      0o644
  in
  let pid =
    Unix.create_process spr
      [|
        spr; "serve"; "--state-dir"; state_dir; "--workers"; string_of_int workers;
        "--max-queue"; string_of_int max_queue;
      |]
      Unix.stdin log log
  in
  Unix.close log;
  let socket = Filename.concat state_dir "serve.sock" in
  let rec wait n =
    if n > 100 then Alcotest.failf "daemon on %s did not come up" state_dir
    else
      match Client.ping ~socket with
      | Ok () -> ()
      | Error _ ->
        Unix.sleepf 0.1;
        wait (n + 1)
  in
  wait 0;
  (pid, socket)

let stop_daemon pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  ignore (try Unix.waitpid [] pid with Unix.Unix_error _ -> (0, Unix.WEXITED 0))

let kill9 pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (try Unix.waitpid [] pid with Unix.Unix_error _ -> (0, Unix.WEXITED 0))

let find_job ~state_dir id =
  let jobs, _ = Job.scan ~state_dir in
  match List.find_opt (fun j -> j.Job.id = id) jobs with
  | Some j -> j
  | None -> Alcotest.failf "job %s missing from %s" id state_dir

(* Poll the durable record until the job reaches a terminal state. *)
let wait_terminal ?(timeout = 120.0) ~state_dir id =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    let j = find_job ~state_dir id in
    match j.Job.state with
    | Job.Done _ | Job.Failed _ | Job.Cancelled -> j
    | Job.Queued | Job.Running _ | Job.Parked ->
      if Unix.gettimeofday () -. t0 > timeout then
        Alcotest.failf "%s stuck in state %s" id (Job.state_to_string j.Job.state)
      else begin
        Unix.sleepf 0.2;
        go ()
      end
  in
  go ()

let wait_worker_pid ?(timeout = 30.0) ~state_dir id =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    match (find_job ~state_dir id).Job.state with
    | Job.Running pid -> pid
    | st ->
      if Unix.gettimeofday () -. t0 > timeout then
        Alcotest.failf "%s never started (state %s)" id (Job.state_to_string st)
      else begin
        Unix.sleepf 0.1;
        go ()
      end
  in
  go ()

let snapshot_count ~state_dir id =
  let j = find_job ~state_dir id in
  match Sys.readdir (Job.run_dir ~state_dir j) with
  | exception Sys_error _ -> 0
  | entries ->
    Array.fold_left
      (fun n f -> if String.length f > 5 && String.sub f 0 5 = "snap-" then n + 1 else n)
      0 entries

let read_file path =
  match Spr_util.Persist.read_file path with
  | Ok text -> text
  | Error e -> Alcotest.failf "%s: %s" path e

(* The comparable outcome of a finished job: final layout bytes plus
   the Run_end cost components from its trace. *)
let job_outcome ~state_dir id =
  let j = find_job ~state_dir id in
  let layout = read_file (Job.layout_file ~state_dir j) in
  match Trace.of_file (Job.trace_file ~state_dir j) with
  | Error e -> Error ("trace: " ^ e)
  | Ok events -> (
    match
      List.find_map
        (fun e ->
          match e.Trace.ev with
          | Trace.Run_end { g; d; delay_ns; _ } -> Some (g, d, delay_ns)
          | _ -> None)
        events
    with
    | None -> Error "trace has no run_end"
    | Some (g, d, delay_ns) ->
      Ok { Spr_check.Crash.o_layout = layout; o_g = g; o_d = d; o_critical_delay = delay_ns })

let quick_spec ?(label = "quick") ?(seed = 3) () =
  { Job.default_spec with Job.circuit = Some "s1"; label; seed; effort = "quick" }

(* s1 at standard effort anneals for well over ten seconds — long
   enough to kill things mid-flight deterministically. *)
let long_spec ?(seed = 7) () =
  { Job.default_spec with Job.circuit = Some "s1"; label = "long"; seed; effort = "standard" }

(* --- end-to-end: happy path --- *)

let test_submit_completes () =
  let state_dir = "serve-e2e" in
  rmrf state_dir;
  let pid, socket = start_daemon state_dir in
  Fun.protect
    ~finally:(fun () -> stop_daemon pid)
    (fun () ->
      let events = ref 0 in
      match Client.submit ~on_event:(fun _ -> incr events) ~socket (quick_spec ()) with
      | Ok (Protocol.Job_done { id; status; report }) ->
        Alcotest.(check string) "status" "completed" status;
        Alcotest.(check bool) "events streamed live" true (!events > 0);
        (match report with
        | Some rj -> (
          match Spr_obs.Report.of_json rj with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "streamed report invalid: %s" e)
        | None -> Alcotest.fail "done without a report");
        let j = find_job ~state_dir id in
        Alcotest.(check bool) "layout written" true (Sys.file_exists (Job.layout_file ~state_dir j));
        (match Json.parse (read_file (Job.report_file ~state_dir j)) with
        | Error e -> Alcotest.failf "report.json unparsable: %s" e
        | Ok rj -> (
          match Spr_obs.Report.of_json rj with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "report.json invalid: %s" e))
      | Ok r ->
        Alcotest.failf "unexpected terminal: %s" (Json.to_string (Protocol.response_to_json r))
      | Error e -> Alcotest.failf "submit: %s" e);
  rmrf state_dir

(* --- adversarial socket input --- *)

let test_garbage_frames_keep_daemon_up () =
  let state_dir = "serve-garbage" in
  rmrf state_dir;
  let pid, socket = start_daemon state_dir in
  Fun.protect
    ~finally:(fun () -> stop_daemon pid)
    (fun () ->
      let rng = Spr_util.Rng.create 11 in
      List.iter
        (fun bytes ->
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_UNIX socket);
          (try
             let _ = Unix.write_substring fd bytes 0 (String.length bytes) in
             ()
           with Unix.Unix_error _ -> ());
          (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
          (* drain whatever structured reply comes back, then close *)
          let buf = Bytes.create 4096 in
          (try
             while Unix.read fd buf 0 4096 > 0 do
               ()
             done
           with Unix.Unix_error _ -> ());
          Unix.close fd)
        (Spr_check.Service.garbage_frames ~rng ~n:60);
      (* the daemon survived all of it and still serves *)
      match Client.ping ~socket with
      | Ok () -> ()
      | Error e -> Alcotest.failf "daemon died under garbage input: %s" e);
  rmrf state_dir

(* --- client disconnect mid-stream --- *)

let test_client_disconnect_job_survives () =
  let state_dir = "serve-disconnect" in
  rmrf state_dir;
  let pid, socket = start_daemon state_dir in
  Fun.protect
    ~finally:(fun () -> stop_daemon pid)
    (fun () ->
      match Client.open_submit ~socket (quick_spec ~label:"orphaned" ()) with
      | Error _ -> Alcotest.fail "submission rejected"
      | Ok (conn, id) ->
        (* hang up while the job is live *)
        Client.close conn;
        let j = wait_terminal ~state_dir id in
        (match j.Job.state with
        | Job.Done status -> Alcotest.(check string) "completed unwatched" "completed" status
        | st -> Alcotest.failf "job ended %s" (Job.state_to_string st)));
  rmrf state_dir

(* --- worker crash isolation --- *)

let test_worker_kill_isolated () =
  let state_dir = "serve-isolation" in
  rmrf state_dir;
  let pid, socket = start_daemon ~workers:2 state_dir in
  Fun.protect
    ~finally:(fun () -> stop_daemon pid)
    (fun () ->
      match Client.open_submit ~socket (long_spec ()) with
      | Error _ -> Alcotest.fail "long job rejected"
      | Ok (long_conn, long_id) -> (
        let wpid = wait_worker_pid ~state_dir long_id in
        (* second, concurrent job on the other worker slot *)
        match Client.open_submit ~socket (quick_spec ~label:"bystander" ()) with
        | Error _ -> Alcotest.fail "bystander rejected"
        | Ok (quick_conn, _quick_id) ->
          (try Unix.kill wpid Sys.sigkill with Unix.Unix_error _ -> ());
          (* the killed worker's client gets a structured failure... *)
          (match Client.await long_conn with
          | Ok (Protocol.Job_failed { error; _ }) ->
            Alcotest.(check bool) "failure names the signal" true
              (String.length error > 0)
          | Ok r ->
            Alcotest.failf "killed worker terminal: %s"
              (Json.to_string (Protocol.response_to_json r))
          | Error e -> Alcotest.failf "killed worker await: %s" e);
          (* ...while the concurrent job is untouched *)
          (match Client.await quick_conn with
          | Ok (Protocol.Job_done { status; _ }) ->
            Alcotest.(check string) "bystander completed" "completed" status
          | Ok r ->
            Alcotest.failf "bystander terminal: %s"
              (Json.to_string (Protocol.response_to_json r))
          | Error e -> Alcotest.failf "bystander await: %s" e);
          match (find_job ~state_dir long_id).Job.state with
          | Job.Failed _ -> ()
          | st -> Alcotest.failf "killed job recorded %s" (Job.state_to_string st)));
  rmrf state_dir

(* --- admission control and cancellation --- *)

let test_admission_and_cancel () =
  let state_dir = "serve-admission" in
  rmrf state_dir;
  let pid, socket = start_daemon ~workers:1 ~max_queue:1 state_dir in
  Fun.protect
    ~finally:(fun () -> stop_daemon pid)
    (fun () ->
      (* invalid specs are rejected before a job id is allocated *)
      (match Client.submit ~socket { (quick_spec ()) with Job.effort = "heroic" } with
      | Ok (Protocol.Rejected (Protocol.Invalid _)) -> ()
      | _ -> Alcotest.fail "invalid spec not rejected");
      match Client.open_submit ~socket (long_spec ()) with
      | Error _ -> Alcotest.fail "first job rejected"
      | Ok (running_conn, running_id) -> (
        let _ = wait_worker_pid ~state_dir running_id in
        (* worker busy: this one queues *)
        match Client.open_submit ~socket (quick_spec ~label:"queued" ()) with
        | Error _ -> Alcotest.fail "queueable job rejected"
        | Ok (queued_conn, queued_id) ->
          (* queue full: overloaded, with a positive backoff *)
          (match Client.submit ~socket (quick_spec ~label:"excess" ()) with
          | Ok (Protocol.Rejected (Protocol.Overloaded { queued; backoff_s })) ->
            Alcotest.(check int) "queue depth reported" 1 queued;
            Alcotest.(check bool) "positive backoff" true (backoff_s > 0.0)
          | Ok r ->
            Alcotest.failf "expected overloaded, got %s"
              (Json.to_string (Protocol.response_to_json r))
          | Error e -> Alcotest.failf "overload submit: %s" e);
          (* cancel the running job: graceful stop, structured terminal *)
          (match Client.cancel ~socket running_id with
          | Ok (Protocol.Job_cancelled _) -> ()
          | Ok r ->
            Alcotest.failf "cancel reply: %s" (Json.to_string (Protocol.response_to_json r))
          | Error e -> Alcotest.failf "cancel: %s" e);
          (match Client.await running_conn with
          | Ok (Protocol.Job_cancelled _) -> ()
          | Ok (Protocol.Job_done _) -> ()  (* completed in the race window *)
          | Ok r ->
            Alcotest.failf "cancelled terminal: %s"
              (Json.to_string (Protocol.response_to_json r))
          | Error e -> Alcotest.failf "cancelled await: %s" e);
          (* the queued job now gets the worker and completes *)
          (match Client.await queued_conn with
          | Ok (Protocol.Job_done { status; _ }) ->
            Alcotest.(check string) "queued job ran after cancel" "completed" status
          | Ok r ->
            Alcotest.failf "queued terminal: %s" (Json.to_string (Protocol.response_to_json r))
          | Error e -> Alcotest.failf "queued await: %s" e);
          ignore queued_id));
  rmrf state_dir

(* --- graceful drain --- *)

let test_drain_parks_and_resumes () =
  let state_dir = "serve-drain" in
  rmrf state_dir;
  let pid, socket = start_daemon ~workers:1 state_dir in
  let id =
    match Client.open_submit ~socket (long_spec ()) with
    | Error _ ->
      stop_daemon pid;
      Alcotest.fail "job rejected"
    | Ok (conn, id) ->
      let _ = wait_worker_pid ~state_dir id in
      Client.close conn;
      id
  in
  (* SIGTERM: daemon stops accepting, workers checkpoint, job parks *)
  stop_daemon pid;
  (match (find_job ~state_dir id).Job.state with
  | Job.Parked -> ()
  | st -> Alcotest.failf "after drain, job is %s (wanted parked)" (Job.state_to_string st));
  Alcotest.(check bool) "socket removed on drain" false
    (Sys.file_exists (Filename.concat state_dir "serve.sock"));
  (* restart: the parked job resumes from its snapshots and finishes *)
  let pid2, _socket2 = start_daemon ~workers:1 state_dir in
  Fun.protect
    ~finally:(fun () -> stop_daemon pid2)
    (fun () ->
      match (wait_terminal ~state_dir id).Job.state with
      | Job.Done _ -> ()
      | st -> Alcotest.failf "resumed job ended %s" (Job.state_to_string st));
  rmrf state_dir

(* --- the headline property: daemon kill -9 + restart ≡ uninterrupted --- *)

let test_daemon_kill9_recovery_bit_identical () =
  let ref_dir = "serve-ref" in
  let crash_dir = "serve-crash" in
  let spec = long_spec ~seed:5 () in
  let daemon = ref None in
  let stop () =
    (match !daemon with Some p -> kill9 p | None -> ());
    daemon := None
  in
  let runner =
    {
      Spr_check.Service.reference =
        (fun () ->
          rmrf ref_dir;
          let pid, socket = start_daemon ~workers:1 ref_dir in
          daemon := Some pid;
          let r =
            match Client.submit ~socket spec with
            | Ok (Protocol.Job_done { id; _ }) -> job_outcome ~state_dir:ref_dir id
            | Ok r -> Error (Json.to_string (Protocol.response_to_json r))
            | Error e -> Error e
          in
          stop_daemon pid;
          daemon := None;
          r);
      interrupted =
        (fun ~kill_after_snapshots ->
          let pid, socket = start_daemon ~workers:1 crash_dir in
          daemon := Some pid;
          match Client.open_submit ~socket spec with
          | Error _ -> Error "submission rejected"
          | Ok (conn, id) ->
            let rec wait_snapshots n =
              if n > 600 then Error "no snapshots appeared"
              else
                let j = find_job ~state_dir:crash_dir id in
                match j.Job.state with
                | Job.Done _ | Job.Failed _ | Job.Cancelled -> Ok false
                | _ ->
                  if snapshot_count ~state_dir:crash_dir id >= kill_after_snapshots then Ok true
                  else begin
                    Unix.sleepf 0.1;
                    wait_snapshots (n + 1)
                  end
            in
            let reached = wait_snapshots 0 in
            let wpid =
              match (find_job ~state_dir:crash_dir id).Job.state with
              | Job.Running p -> Some p
              | _ -> None
            in
            (* the crash: daemon and worker die together, no goodbye *)
            stop ();
            (match wpid with
            | Some p -> (try Unix.kill p Sys.sigkill with Unix.Unix_error _ -> ())
            | None -> ());
            Client.close conn;
            reached);
      recover =
        (fun () ->
          let pid, _socket = start_daemon ~workers:1 crash_dir in
          daemon := Some pid;
          let jobs, _ = Job.scan ~state_dir:crash_dir in
          match jobs with
          | [ j ] -> (
            match (wait_terminal ~state_dir:crash_dir j.Job.id).Job.state with
            | Job.Done _ ->
              let r = job_outcome ~state_dir:crash_dir j.Job.id in
              stop_daemon pid;
              daemon := None;
              r
            | st ->
              stop_daemon pid;
              daemon := None;
              Error ("recovered job ended " ^ Job.state_to_string st))
          | l -> Error (Printf.sprintf "expected one recoverable job, found %d" (List.length l)));
      reset =
        (fun () ->
          stop ();
          rmrf crash_dir);
    }
  in
  let rng = Spr_util.Rng.create 23 in
  Fun.protect
    ~finally:(fun () ->
      stop ();
      rmrf ref_dir;
      rmrf crash_dir)
    (fun () ->
      match Spr_check.Service.check_recovery ~attempts:1 ~rng ~max_kill:3 runner with
      | Ok () -> ()
      | Error f -> Alcotest.fail (Spr_check.Service.failure_to_string f))

let () =
  Alcotest.run "spr_serve"
    [
      ( "frame",
        [
          Alcotest.test_case "byte-at-a-time round trip" `Quick test_frame_roundtrip;
          Alcotest.test_case "adversarial bytes never raise" `Quick test_frame_adversarial;
        ] );
      ("protocol", [ Alcotest.test_case "codec round trips, total decode" `Quick test_protocol_roundtrip ]);
      ("job-store", [ Alcotest.test_case "durable records, scan diagnostics" `Quick test_job_store ]);
      ( "service",
        [
          Alcotest.test_case "submit streams and completes" `Quick test_submit_completes;
          Alcotest.test_case "garbage frames leave the daemon up" `Quick
            test_garbage_frames_keep_daemon_up;
          Alcotest.test_case "client disconnect does not kill the job" `Quick
            test_client_disconnect_job_survives;
          Alcotest.test_case "worker kill -9 fails only its own job" `Quick
            test_worker_kill_isolated;
          Alcotest.test_case "admission control and cancellation" `Quick test_admission_and_cancel;
          Alcotest.test_case "SIGTERM drain parks, restart resumes" `Quick
            test_drain_parks_and_resumes;
          Alcotest.test_case "daemon kill -9 + restart is bit-identical" `Quick
            test_daemon_kill9_recovery_bit_identical;
        ] );
    ]
