(* Tests for the spr_check invariant-audit subsystem: the property
   harness over the real incremental state, auditor mutation coverage
   (an auditor that can't fail is worthless), the BLIF round-trip and
   seeded-determinism guarantees. *)

module Check = Spr_check
module Prop = Spr_check.Prop
module Ops = Spr_check.Spr_ops
module Audit = Spr_check.Audit
module Finding = Spr_check.Finding
module Rs = Spr_route.Route_state
module P = Spr_layout.Placement
module Arch = Spr_arch.Arch
module Nl = Spr_netlist.Netlist
module Gen = Spr_netlist.Generator
module Blif = Spr_netlist.Blif
module Levelize = Spr_netlist.Levelize
module Kind = Spr_netlist.Cell_kind
module Sta = Spr_timing.Sta
module J = Spr_util.Journal
module Tool = Spr_core.Tool
module Engine = Spr_anneal.Engine

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let check_findings label = function
  | [] -> ()
  | fs -> Alcotest.failf "%s:\n%s" label (Finding.summarize fs)

let expect_findings label auditor = function
  | [] -> Alcotest.failf "%s: auditor %s reported nothing for a seeded corruption" label auditor
  | fs ->
    if not (List.for_all (fun f -> f.Finding.auditor = auditor) fs) then
      Alcotest.failf "%s: expected only %s findings, got:\n%s" label auditor
        (Finding.summarize fs)

(* --- property-based differential testing --- *)

let test_prop_op_sequences () =
  let spec = Ops.spec ~n_cells:40 ~tracks:12 () in
  match Prop.run ~seeds:[ 1; 2; 3 ] ~n_ops:45 spec with
  | Ok () -> ()
  | Error f -> Alcotest.fail (Prop.failure_to_string spec f)

(* Differential twins: every random op hits a serial-rerouting state
   and a parallel-rerouting one (real 3-worker pool); their observable
   fingerprints must stay string-equal throughout. A divergence shrinks
   to a minimal op list plus the first disagreeing net line. *)
let test_prop_parallel_mirrors_serial () =
  let spec = Spr_check.Par_ops.spec ~n_cells:40 ~tracks:12 () in
  match Prop.run ~seeds:[ 1; 2; 3 ] ~n_ops:45 spec with
  | Ok () -> ()
  | Error f -> Alcotest.fail (Prop.failure_to_string spec f)

let test_prop_shrinker_reports () =
  (* A deliberately broken system: a counter that must stay below 3,
     and only Incr ops matter. The harness must find the failure and
     shrink the sequence to exactly 3 Incrs. *)
  let spec =
    {
      Prop.name = "counter stays under 3";
      init = (fun _ -> ref 0);
      gen = (fun rng -> if Spr_util.Rng.int rng 2 = 0 then `Incr else `Noise);
      apply = (fun st op -> match op with `Incr -> incr st | `Noise -> ());
      check = (fun st -> if !st >= 3 then Error "counter reached 3" else Ok ());
      show = (function `Incr -> "Incr" | `Noise -> "Noise");
    }
  in
  match Prop.run ~seeds:[ 1 ] ~n_ops:40 spec with
  | Ok () -> Alcotest.fail "broken property passed"
  | Error f ->
    Alcotest.(check int) "shrunk to the minimal sequence" 3 (List.length f.Prop.ops);
    Alcotest.(check bool) "all survivors are Incr" true
      (List.for_all (fun op -> op = `Incr) f.Prop.ops);
    let report = Prop.failure_to_string spec f in
    Alcotest.(check bool) "report names the seed" true (contains report "seed: 1");
    Alcotest.(check bool) "report lists the ops" true (contains report "Incr")

(* The dense incremental state — the journaled geometry memo in the
   placement and the bitset/sorted-queue unrouted structures in the
   routing state — must equal a from-scratch recomputation after any op
   sequence, including mid-transaction rollbacks. [P.check_caches] diffs
   every live memo entry against recomputed geometry; [Rs.check] diffs
   the queues, mirrors and counters against the fabric; on top of those
   we rebuild the U{_G} and U{_D,R} retry orders here from nothing but
   the netlist and current placement and require exact equality. *)
let test_dense_state_matches_scratch () =
  let module I = Spr_util.Interval in
  let desc (a : int * int) b = compare b a in
  let scratch_ug rs =
    let place = Rs.place rs in
    let keyed = ref [] in
    for net = Nl.n_nets (Rs.netlist rs) - 1 downto 0 do
      if Rs.needs_global rs net && Rs.global_route rs net = None then
        keyed := (P.half_perimeter place net, net) :: !keyed
    done;
    List.map snd (List.sort desc !keyed)
  in
  let scratch_ud rs ch =
    let keyed = ref [] in
    for net = Nl.n_nets (Rs.netlist rs) - 1 downto 0 do
      if List.mem ch (Rs.missing_channels rs net) then
        keyed := (I.length (List.assoc ch (Rs.h_demands rs net)), net) :: !keyed
    done;
    List.map snd (List.sort desc !keyed)
  in
  let check st =
    let rs = Ops.route_state st in
    match P.check_caches (Rs.place rs) with
    | Error e -> Error ("geom memo cache: " ^ e)
    | Ok () -> (
      match Rs.check rs with
      | Error e -> Error ("route state: " ^ e)
      | Ok () ->
        if Rs.u_g rs <> scratch_ug rs then
          Error "u_g differs from scratch recomputation"
        else begin
          let bad = ref None in
          for net = 0 to Nl.n_nets (Rs.netlist rs) - 1 do
            List.iter
              (fun ch ->
                if !bad = None && Rs.u_d rs ch <> scratch_ud rs ch then
                  bad := Some ch)
              (Rs.missing_channels rs net)
          done;
          match !bad with
          | Some ch ->
            Error (Printf.sprintf "u_d channel %d differs from scratch recomputation" ch)
          | None -> Ok ()
        end)
  in
  let base = Ops.spec ~n_cells:40 ~tracks:12 () in
  let spec = { base with Prop.name = "dense state matches scratch"; check } in
  match Prop.run ~seeds:[ 5; 6; 7 ] ~n_ops:50 spec with
  | Ok () -> ()
  | Error f -> Alcotest.fail (Prop.failure_to_string spec f)

let test_undo_roundtrip_deterministic () =
  let st = Ops.make ~n_cells:40 ~tracks:12 ~seed:11 () in
  check_findings "fresh state" (Audit.run_all (Ops.route_state st));
  List.iter (Ops.apply st)
    [
      Ops.Begin;
      Ops.Rip_cell 5;
      Ops.Route_pass;
      Ops.Unroute 7;
      Ops.Route_net 3;
      Ops.Pinmap_move (9, 1);
      Ops.Swap (123, 4567);
      Ops.Rollback;
    ];
  match Ops.check st with
  | Ok () -> ()
  | Error e -> Alcotest.failf "undo round-trip violated: %s" e

(* --- mutation smoke tests: every auditor must detect its own fault --- *)

let routed_state seed =
  let st = Ops.make ~n_cells:40 ~tracks:14 ~seed () in
  let rs = Ops.route_state st in
  check_findings "pre-corruption state" (Audit.run_all rs);
  rs

let first_net p rs =
  let n = Nl.n_nets (Rs.netlist rs) in
  let rec go i = if i >= n then None else if p i then Some i else go (i + 1) in
  go 0

let test_mutation_d_flag () =
  let rs = routed_state 2 in
  match first_net (fun n -> Rs.routable rs n) rs with
  | None -> Alcotest.fail "no routable net"
  | Some net ->
    Rs.Debug.flip_d_flag rs net;
    expect_findings "flipped d_flag" "route" (Check.Route_audit.run rs)

let test_mutation_d_total () =
  let rs = routed_state 3 in
  Rs.Debug.bump_d_total rs 1;
  expect_findings "bumped d_total" "route" (Check.Route_audit.run rs)

let test_mutation_in_ug () =
  let rs = routed_state 4 in
  match first_net (fun n -> Rs.routable rs n) rs with
  | None -> Alcotest.fail "no routable net"
  | Some net ->
    Rs.Debug.flip_in_ug_flag rs net;
    expect_findings "flipped in_ug" "route" (Check.Route_audit.run rs)

let test_mutation_missing () =
  let rs = routed_state 5 in
  (* Rip everything so single-channel nets sit queued with a non-empty
     missing list, then drop one list on the floor. *)
  let j = J.create () in
  for net = 0 to Nl.n_nets (Rs.netlist rs) - 1 do
    Rs.rip_up rs j net
  done;
  J.commit j;
  check_findings "after mass rip-up" (Check.Route_audit.run rs);
  match first_net (fun n -> Rs.missing_channels rs n <> []) rs with
  | None -> Alcotest.fail "no net with queued detail demands"
  | Some net ->
    Rs.Debug.clear_missing rs net;
    expect_findings "cleared missing" "route" (Check.Route_audit.run rs)

let test_mutation_owner () =
  let rs = routed_state 6 in
  let arch = Rs.arch rs in
  (* Free one claimed horizontal segment behind the bookkeeping's back. *)
  let corrupted = ref false in
  (try
     for ch = 0 to arch.Arch.n_channels - 1 do
       for tr = 0 to arch.Arch.tracks - 1 do
         let segs = Arch.hsegments arch ~channel:ch ~track:tr in
         for s = 0 to Array.length segs - 1 do
           if Rs.hseg_owner rs ~channel:ch ~track:tr ~seg:s <> -1 then begin
             Rs.Debug.set_hseg_owner rs ~channel:ch ~track:tr ~seg:s (-1);
             corrupted := true;
             raise Exit
           end
         done
       done
     done
   with Exit -> ());
  Alcotest.(check bool) "found a claimed segment" true !corrupted;
  expect_findings "freed owned segment" "route" (Check.Route_audit.run rs)

let test_mutation_pad_off_perimeter () =
  let rs = routed_state 7 in
  let place = Rs.place rs in
  let nl = Rs.netlist rs in
  let arch = P.arch place in
  check_findings "pre-corruption placement" (Check.Place_audit.run place);
  let pad =
    let rec go c =
      if c >= Nl.n_cells nl then None
      else if Kind.is_io (Nl.cell nl c).Nl.kind then Some c
      else go (c + 1)
    in
    go 0
  in
  let interior =
    let found = ref None in
    for row = 0 to arch.Arch.rows - 1 do
      for col = 0 to arch.Arch.cols - 1 do
        if !found = None && not (Arch.is_perimeter arch ~row ~col) then
          found := Some { P.row; col }
      done
    done;
    !found
  in
  match (pad, interior) with
  | Some pad, Some interior ->
    (* swap_slots deliberately skips legality; this is the corruption. *)
    P.swap_slots place (P.slot_of place pad) interior;
    expect_findings "pad off perimeter" "place" (Check.Place_audit.run place)
  | _ -> Alcotest.fail "fabric too small to stage the corruption"

let test_mutation_stale_sta () =
  let st = Ops.make ~n_cells:40 ~tracks:14 ~seed:8 () in
  let rs = Ops.route_state st in
  let sta = Sta.create Spr_timing.Delay_model.default rs in
  check_findings "fresh sta" (Check.Sta_audit.run sta rs);
  (* Change the routing without telling the analyzer — the classic
     missed-invalidation bug. *)
  let j = J.create () in
  for net = 0 to Nl.n_nets (Rs.netlist rs) - 1 do
    Rs.rip_up rs j net
  done;
  J.commit j;
  expect_findings "stale arrivals" "sta" (Check.Sta_audit.run sta rs)

(* --- BLIF writer -> parser round trip --- *)

(* Both conversion directions preserve signal (net) names, so the
   isomorphism is keyed on them: for each net, its driver's shape and
   the multiset of sink descriptions must survive the trip. Sinks are
   described by the net they drive in turn (or "po" for output pads). *)
let net_signature nl =
  let sink_key (cell, pin) =
    let c = Nl.cell nl cell in
    let ident =
      match Nl.out_net nl cell with
      | Some out -> "drives:" ^ (Nl.net nl out).Nl.net_name
      | None -> "po"
    in
    Printf.sprintf "%s/%s/pin%d/fanin%d" ident (Kind.to_string c.Nl.kind) pin c.Nl.n_inputs
  in
  List.sort compare
    (Array.to_list
       (Array.map
          (fun net ->
            let driver = Nl.cell nl net.Nl.driver in
            ( net.Nl.net_name,
              Kind.to_string driver.Nl.kind,
              driver.Nl.n_inputs,
              List.sort compare (Array.to_list (Array.map sink_key net.Nl.sinks)) ))
          (Nl.nets nl)))

let levels_by_net nl =
  let lev = Levelize.run_exn nl in
  List.sort compare
    (Array.to_list
       (Array.map
          (fun net -> (net.Nl.net_name, lev.Levelize.levels.(net.Nl.driver)))
          (Nl.nets nl)))

let blif_roundtrip_seed seed =
  let nl = Gen.generate (Gen.default ~n_cells:60) ~seed in
  let text = Blif.to_string ~model_name:"rt" nl in
  match Blif.parse_string text with
  | Error e -> Alcotest.failf "seed %d: reparse failed: %s" seed e
  | Ok nl2 ->
    let c1 = Nl.counts nl and c2 = Nl.counts nl2 in
    if c1 <> c2 then Alcotest.failf "seed %d: cell counts differ after round trip" seed;
    if Nl.n_nets nl <> Nl.n_nets nl2 then
      Alcotest.failf "seed %d: net counts differ (%d vs %d)" seed (Nl.n_nets nl)
        (Nl.n_nets nl2);
    if net_signature nl <> net_signature nl2 then
      Alcotest.failf "seed %d: netlists not isomorphic after round trip" seed;
    if levels_by_net nl <> levels_by_net nl2 then
      Alcotest.failf "seed %d: levelization disagrees after round trip" seed;
    let text2 = Blif.to_string ~model_name:"rt" nl2 in
    if text <> text2 then Alcotest.failf "seed %d: serialization is not a fixpoint" seed

let test_blif_roundtrip () = List.iter blif_roundtrip_seed [ 1; 2; 3; 4; 5; 6 ]

(* --- seeded determinism of the whole tool --- *)

let quick_config ?(seed = 5) n =
  Tool.Config.(
    default |> with_seed seed
    |> with_anneal
         {
           (Engine.default_config ~n) with
           Engine.moves_per_temp = max 150 (2 * n);
           warmup_moves = 150;
           max_temperatures = 12;
         })

let test_run_deterministic_state () =
  let nl = Gen.generate (Gen.default ~n_cells:60) ~seed:9 in
  let arch = Arch.size_for ~tracks:20 nl in
  let cfg = quick_config (Nl.n_cells nl) in
  let a = Tool.run_exn ~config:cfg arch nl in
  let b = Tool.run_exn ~config:cfg arch nl in
  Alcotest.(check bool) "identical final cost (delay)" true
    (a.Tool.critical_delay = b.Tool.critical_delay);
  Alcotest.(check int) "identical G" a.Tool.g b.Tool.g;
  Alcotest.(check int) "identical D" a.Tool.d b.Tool.d;
  Alcotest.(check int) "identical move count" a.Tool.anneal_report.Engine.n_moves
    b.Tool.anneal_report.Engine.n_moves;
  (* Track usage: the full routing snapshot (segment ownership, routes,
     queues) must be byte-identical. *)
  Alcotest.(check bool) "identical track usage" true
    (Rs.snapshot a.Tool.route = Rs.snapshot b.Tool.route);
  Alcotest.(check (list int)) "identical critical path" (Sta.critical_path a.Tool.sta)
    (Sta.critical_path b.Tool.sta)

(* --- the tool under continuous audit --- *)

let test_tool_validated_200_cells () =
  let nl = Gen.generate (Gen.default ~n_cells:200) ~seed:3 in
  let arch = Arch.size_for ~tracks:24 nl in
  let cfg =
    Tool.Config.with_validate ~every:40 true (quick_config ~seed:3 (Nl.n_cells nl))
  in
  (* validate=true fail-fasts on any finding mid-anneal; reaching the
     result at all means every periodic audit passed. *)
  let r = Tool.run_exn ~config:cfg arch nl in
  check_findings "final 200-cell layout" (Tool.audit_result r);
  Alcotest.(check bool) "made routing progress" true (r.Tool.d < Rs.n_routable r.Tool.route)

(* --- crash-fault injection: killed and resumed == never killed --- *)

module Crash = Spr_check.Crash
module V2 = Spr_core.Checkpoint.V2

let rec rmrf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rmrf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let outcome_of (r : Tool.result) =
  {
    Crash.o_layout = Rs.snapshot r.Tool.route;
    o_g = r.Tool.g;
    o_d = r.Tool.d;
    o_critical_delay = r.Tool.critical_delay;
  }

(* Small circuits and short schedules: every crash attempt replays the
   run up to three times. *)
let crash_preset ~n_cells ~tracks ~seed =
  let nl = Gen.generate (Gen.default ~n_cells) ~seed in
  let arch = Arch.size_for ~tracks nl in
  let config =
    Tool.Config.(
      default |> with_seed seed
      |> with_anneal
           {
             (Engine.default_config ~n:n_cells) with
             Engine.moves_per_temp = max 120 (2 * n_cells);
             warmup_moves = 120;
             max_temperatures = 8;
           })
  in
  (arch, nl, config)

let crash_runner ~name ~arch ~nl ~config =
  let dir = "crash-" ^ name in
  let ref_dir = dir ^ "-ref" in
  (* The reference also checkpoints, so both runs canonicalize their
     incremental timing state at the same temperature boundaries. *)
  let reference =
    lazy
      (rmrf ref_dir;
       outcome_of (Tool.run_exn ~config:(Tool.Config.with_run_dir ref_dir config) arch nl))
  in
  let resume_config = Tool.Config.with_run_dir dir config in
  let runner =
    {
      Crash.reference = (fun () -> Lazy.force reference);
      crashed =
        (fun ~kill_after ->
          let r =
            Tool.run_exn
              ~config:
                Tool.Config.(
                  config |> with_run_dir dir |> with_final_checkpoint false
                  |> with_stop_after_accepted kill_after)
              arch nl
          in
          r.Tool.status <> Tool.Completed);
      resume =
        (fun () ->
          match V2.load_latest nl ~dir with
          | Ok loaded -> (
            match Tool.run ~config:resume_config ~resume:loaded arch nl with
            | Ok r -> Ok (outcome_of r)
            | Error e -> Error (Tool.error_to_string e))
          | Error _ -> (
            (* Crashed before the first snapshot existed: recovery is a
               fresh start, which must still match by determinism. *)
            match Tool.run ~config:resume_config arch nl with
            | Ok r -> Ok (outcome_of r)
            | Error e -> Error (Tool.error_to_string e)));
      reset = (fun () -> rmrf dir);
    }
  in
  ( runner,
    fun () ->
      rmrf dir;
      rmrf ref_dir )

let test_crash_equivalence () =
  let presets =
    [ ("p40", crash_preset ~n_cells:40 ~tracks:16); ("p56", crash_preset ~n_cells:56 ~tracks:18) ]
  in
  List.iter
    (fun (pname, preset) ->
      List.iter
        (fun seed ->
          let arch, nl, config = preset ~seed in
          let name = Printf.sprintf "%s-s%d" pname seed in
          let runner, cleanup = crash_runner ~name ~arch ~nl ~config in
          let rng = Spr_util.Rng.create ((seed * 7) + 1) in
          let result = Crash.check_equivalence ~attempts:1 ~rng ~max_kill:250 runner in
          cleanup ();
          match result with
          | Ok () -> ()
          | Error f -> Alcotest.failf "preset %s: %s" name (Crash.failure_to_string f))
        [ 1; 2; 3 ])
    presets

(* A portfolio fleet interrupted mid-run and resumed from its run
   directory must end exactly where the uninterrupted fleet ends:
   same per-replica layouts, same winner, same exchange history. *)
let test_portfolio_kill_resume () =
  List.iter
    (fun (policy_name, exchange) ->
      let arch, nl, base = crash_preset ~n_cells:40 ~tracks:16 ~seed:2 in
      let config = Tool.Config.with_replicas ~exchange 3 base in
      let ref_dir = "crash-fleet-" ^ policy_name ^ "-ref" in
      let dir = "crash-fleet-" ^ policy_name in
      rmrf ref_dir;
      rmrf dir;
      let reference =
        Tool.run_portfolio_exn ~config:(Tool.Config.with_run_dir ref_dir config) arch nl
      in
      let run_config = Tool.Config.with_run_dir dir config in
      let stopped =
        Tool.run_portfolio_exn
          ~config:(Tool.Config.with_stop_after_accepted 60 run_config)
          arch nl
      in
      let interrupted =
        Array.exists
          (fun (r : Tool.result) -> r.Tool.status <> Tool.Completed)
          stopped.Tool.p_results
      in
      if not interrupted then Alcotest.failf "%s: fleet was not interrupted" policy_name;
      let resumed = Tool.run_portfolio_exn ~config:run_config ~resume_dir:dir arch nl in
      Array.iteri
        (fun k (r : Tool.result) ->
          (match r.Tool.status with
          | Tool.Completed -> ()
          | Tool.Interrupted _ ->
            Alcotest.failf "%s: resumed replica %d did not complete" policy_name k);
          if Rs.snapshot r.Tool.route
             <> Rs.snapshot reference.Tool.p_results.(k).Tool.route
          then Alcotest.failf "%s: replica %d diverged after kill+resume" policy_name k)
        resumed.Tool.p_results;
      Alcotest.(check int) (policy_name ^ ": same winner") reference.Tool.p_best_replica
        resumed.Tool.p_best_replica;
      Alcotest.(check bool) (policy_name ^ ": same exchange history") true
        (reference.Tool.p_exchanges = resumed.Tool.p_exchanges);
      rmrf ref_dir;
      rmrf dir)
    [ ("indep", Spr_anneal.Portfolio.Independent); ("best2", Spr_anneal.Portfolio.Best_exchange 2) ]

(* --- trace determinism and schema round-trip --- *)

module Trace = Spr_obs.Trace
module Report = Spr_obs.Report

(* Masked traces (every wall-clock-derived field zeroed) from a fixed
   seed must be bit-identical as strings: across repeated runs, and
   between the serial runner and a one-replica portfolio, whose merge
   path is the one --parallel uses. *)
let masked_lines events =
  String.concat "\n" (List.map (fun e -> Trace.encode_line (Trace.mask_times e)) events)

let trace_preset seed =
  let nl = Gen.generate (Gen.default ~n_cells:48) ~seed in
  let arch = Arch.size_for ~tracks:18 nl in
  let config = Tool.Config.with_trace_recording true (quick_config ~seed (Nl.n_cells nl)) in
  (arch, nl, config)

let test_trace_deterministic () =
  let arch, nl, config = trace_preset 12 in
  let run () =
    let r = Tool.run_exn ~config arch nl in
    masked_lines (Tool.trace_events ~config nl r)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "non-trivial trace" true (String.length a > 0);
  Alcotest.(check bool) "masked traces bit-identical across runs" true (a = b)

let test_trace_serial_matches_portfolio_of_one () =
  let arch, nl, config = trace_preset 13 in
  let serial =
    let r = Tool.run_exn ~config arch nl in
    masked_lines (Tool.trace_events ~config nl r)
  in
  let fleet =
    let config = Tool.Config.with_replicas ~exchange:Spr_anneal.Portfolio.Independent 1 config in
    let p = Tool.run_portfolio_exn ~config arch nl in
    masked_lines (Tool.portfolio_trace_events ~config nl p)
  in
  Alcotest.(check bool) "serial trace == one-replica portfolio trace" true (serial = fleet)

let test_trace_portfolio_deterministic () =
  let arch, nl, config = trace_preset 14 in
  let config = Tool.Config.with_replicas ~exchange:Spr_anneal.Portfolio.Independent 2 config in
  let run () =
    let p = Tool.run_portfolio_exn ~config arch nl in
    masked_lines (Tool.portfolio_trace_events ~config nl p)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "masked K=2 traces bit-identical across runs" true (a = b);
  (* The merged stream carries both replicas and validates structurally. *)
  let p = Tool.run_portfolio_exn ~config arch nl in
  let events = Tool.portfolio_trace_events ~config nl p in
  (match Trace.validate events with
  | Ok () -> ()
  | Error e -> Alcotest.failf "merged trace invalid: %s" e);
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "replica %d present in merged trace" k)
        true
        (List.exists (fun e -> e.Trace.ev_replica = k) events))
    [ 0; 1 ]

let test_trace_roundtrip () =
  let arch, nl, config = trace_preset 15 in
  let r = Tool.run_exn ~config arch nl in
  let events = Tool.trace_events ~config nl r in
  (match Trace.validate events with
  | Ok () -> ()
  | Error e -> Alcotest.failf "trace invalid: %s" e);
  (* encode -> decode -> re-encode is bit-identical, unmasked. *)
  List.iter
    (fun e ->
      let line = Trace.encode_line e in
      match Trace.decode_line line with
      | Error err -> Alcotest.failf "decode failed: %s\n%s" err line
      | Ok e2 ->
        Alcotest.(check string) "re-encoded line identical" line (Trace.encode_line e2))
    events;
  (* The report round-trips through its JSON twin the same way. *)
  let j = Report.to_json r.Tool.report in
  match Report.of_json j with
  | Error e -> Alcotest.failf "report decode failed: %s" e
  | Ok rep2 ->
    Alcotest.(check string) "re-encoded report identical"
      (Spr_obs.Json.to_string j)
      (Spr_obs.Json.to_string (Report.to_json rep2))

let test_graceful_stop_resume () =
  let arch, nl, config = crash_preset ~n_cells:40 ~tracks:16 ~seed:4 in
  let dir = "crash-graceful" in
  let ref_dir = dir ^ "-ref" in
  rmrf dir;
  rmrf ref_dir;
  let reference =
    outcome_of (Tool.run_exn ~config:(Tool.Config.with_run_dir ref_dir config) arch nl)
  in
  (* 171 is deliberately not a multiple of the batch size, so the stop
     (and its final checkpoint) lands mid-batch. *)
  let stopped =
    Tool.run_exn
      ~config:Tool.Config.(config |> with_run_dir dir |> with_max_moves 171)
      arch nl
  in
  (match stopped.Tool.status with
  | Tool.Interrupted Tool.Move_budget -> ()
  | _ -> Alcotest.fail "expected a move-budget interruption");
  match V2.load_latest nl ~dir with
  | Error e -> Alcotest.failf "no resumable snapshot after graceful stop: %s" e
  | Ok loaded -> (
    match Tool.run ~config:(Tool.Config.with_run_dir dir config) ~resume:loaded arch nl with
    | Error e -> Alcotest.fail (Tool.error_to_string e)
    | Ok resumed ->
      (match resumed.Tool.status with
      | Tool.Completed -> ()
      | Tool.Interrupted _ -> Alcotest.fail "resumed run did not complete");
      (match Crash.compare_outcomes ~reference (outcome_of resumed) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "graceful stop + resume diverged: %s" e);
      rmrf dir;
      rmrf ref_dir)

let () =
  Alcotest.run "spr_check"
    [
      ( "prop",
        [
          Alcotest.test_case "random op sequences pass the audits" `Slow
            test_prop_op_sequences;
          Alcotest.test_case "parallel reroute mirrors serial on op sequences" `Slow
            test_prop_parallel_mirrors_serial;
          Alcotest.test_case "shrinker minimizes a failing sequence" `Quick
            test_prop_shrinker_reports;
          Alcotest.test_case "dense state matches scratch recomputation" `Slow
            test_dense_state_matches_scratch;
          Alcotest.test_case "undo round-trip (deterministic)" `Quick
            test_undo_roundtrip_deterministic;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "route audit sees flipped d_flag" `Quick test_mutation_d_flag;
          Alcotest.test_case "route audit sees bumped d_total" `Quick test_mutation_d_total;
          Alcotest.test_case "route audit sees flipped in_ug" `Quick test_mutation_in_ug;
          Alcotest.test_case "route audit sees dropped missing list" `Quick
            test_mutation_missing;
          Alcotest.test_case "route audit sees corrupted owner array" `Quick
            test_mutation_owner;
          Alcotest.test_case "place audit sees pad off perimeter" `Quick
            test_mutation_pad_off_perimeter;
          Alcotest.test_case "sta audit sees missed invalidation" `Quick
            test_mutation_stale_sta;
        ] );
      ("blif", [ Alcotest.test_case "writer -> parser round trip" `Quick test_blif_roundtrip ]);
      ( "determinism",
        [ Alcotest.test_case "same seed, identical layout" `Slow test_run_deterministic_state ]
      );
      ( "tool",
        [
          Alcotest.test_case "200-cell run under continuous audit" `Slow
            test_tool_validated_200_cells;
        ] );
      ( "obs",
        [
          Alcotest.test_case "fixed-seed masked trace is bit-identical" `Slow
            test_trace_deterministic;
          Alcotest.test_case "serial trace == --parallel 1 trace" `Slow
            test_trace_serial_matches_portfolio_of_one;
          Alcotest.test_case "K=2 merged trace deterministic and valid" `Slow
            test_trace_portfolio_deterministic;
          Alcotest.test_case "trace encode -> decode -> re-encode fixpoint" `Slow
            test_trace_roundtrip;
        ] );
      ( "crash",
        [
          Alcotest.test_case "killed and resumed == never killed" `Slow
            test_crash_equivalence;
          Alcotest.test_case "graceful mid-batch stop resumes identically" `Slow
            test_graceful_stop_resume;
          Alcotest.test_case "killed portfolio fleet resumes identically" `Slow
            test_portfolio_kill_resume;
        ] );
    ]
