(* End-to-end tests that drive the spr binary: budget-limited runs exit
   cleanly with a best-so-far layout, and SIGINT leaves behind a
   resumable run directory. The CLI is located relative to this test
   executable (_build/default/test/ -> _build/default/bin/), so the
   tests work under both [dune runtest] and [dune exec]. *)

let spr =
  Filename.concat (Filename.dirname Sys.executable_name) (Filename.concat ".." "bin/spr_cli.exe")

let rec rmrf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rmrf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let has_substring ~sub s =
  let n = String.length sub and m = String.length s in
  let rec scan i = i + n <= m && (String.sub s i n = sub || scan (i + 1)) in
  n = 0 || scan 0

(* Run the CLI to completion, capturing combined stdout/stderr. *)
let run_cli args =
  let cmd = Printf.sprintf "%s %s 2>&1" spr (String.concat " " args) in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  (status, Buffer.contents buf)

let check_exit_zero label = function
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n -> Alcotest.failf "%s: exit code %d" label n
  | Unix.WSIGNALED n -> Alcotest.failf "%s: killed by signal %d" label n
  | Unix.WSTOPPED n -> Alcotest.failf "%s: stopped by signal %d" label n

(* Rebuild the run's netlist the way [spr route --run-resume] does: from the
   recorded circuit name when there is one (net ids must match the
   original construction), else from the copied BLIF bytes. *)
let load_run_dir dir =
  let circuit =
    let ic = open_in (Filename.concat dir "meta") in
    let rec scan () =
      match input_line ic with
      | line -> (
        match String.split_on_char ' ' (String.trim line) with
        | [ "circuit"; name ] -> Some name
        | _ -> scan ())
      | exception End_of_file -> None
    in
    let found = scan () in
    close_in ic;
    found
  in
  let nl =
    match circuit with
    | Some name -> (
      match Spr_netlist.Circuits.find name with
      | Some spec -> Spr_netlist.Circuits.make spec
      | None -> Alcotest.failf "unknown circuit %s in %s/meta" name dir)
    | None -> (
      match Spr_netlist.Blif.parse_file (Filename.concat dir "design.blif") with
      | Error e -> Alcotest.failf "design.blif: %s" e
      | Ok nl -> nl)
  in
  match Spr_core.Checkpoint.V2.load_latest nl ~dir with
  | Error e -> Alcotest.failf "no resumable checkpoint in %s: %s" dir e
  | Ok loaded -> (nl, loaded)

(* A tiny wall-clock budget must stop the run early, exit 0, report the
   interruption, and leave a resumable run directory behind. *)
let test_time_budget_interrupts () =
  let dir = "cli-time-budget" in
  rmrf dir;
  let status, out =
    run_cli
      [ "route"; "--circuit"; "s1"; "--effort"; "standard"; "--seed"; "2";
        "--time-budget"; "0.4"; "--run-dir"; dir ]
  in
  check_exit_zero "time-budget run" status;
  Alcotest.(check bool)
    (Printf.sprintf "reports the interruption (got: %s)" out)
    true
    (has_substring ~sub:"interrupted (time budget)" out);
  Alcotest.(check bool) "points at --run-resume" true (has_substring ~sub:"--run-resume" out);
  let _ = load_run_dir dir in
  rmrf dir

(* A move budget behaves the same way, and the run dir then resumes to
   the end. *)
let test_move_budget_then_resume () =
  let dir = "cli-move-budget" in
  rmrf dir;
  let status, out =
    run_cli
      [ "route"; "--circuit"; "s1"; "--effort"; "quick"; "--seed"; "2";
        "--max-moves"; "900"; "--run-dir"; dir ]
  in
  check_exit_zero "move-budget run" status;
  Alcotest.(check bool)
    (Printf.sprintf "reports the interruption (got: %s)" out)
    true
    (has_substring ~sub:"interrupted (move budget)" out);
  (* the pre-grouping spelling is gone: unknown option, nonzero exit *)
  let status, _ = run_cli [ "route"; "--resume"; dir ] in
  (match status with
  | Unix.WEXITED 0 -> Alcotest.fail "removed --resume alias still accepted"
  | _ -> ());
  let status, out = run_cli [ "route"; "--run-resume"; dir ] in
  check_exit_zero "resumed run" status;
  Alcotest.(check bool)
    (Printf.sprintf "resume announces its snapshot (got: %s)" out)
    true
    (has_substring ~sub:"resuming from" out);
  Alcotest.(check bool)
    (Printf.sprintf "resumed run completes (got: %s)" out)
    true
    (not (has_substring ~sub:"interrupted" out));
  rmrf dir

(* A two-replica portfolio end to end: per-replica reporting, a winner,
   and per-replica snapshot rotations plus a recorded run meta that
   lets --run-resume rebuild the fleet. *)
let test_parallel_smoke () =
  let dir = "cli-parallel" in
  rmrf dir;
  let status, out =
    run_cli
      [ "route"; "--circuit"; "s1"; "--effort"; "quick"; "--seed"; "2";
        "--parallel"; "2"; "--exchange"; "best:4"; "--run-dir"; dir ]
  in
  check_exit_zero "parallel run" status;
  Alcotest.(check bool)
    (Printf.sprintf "reports both replicas (got: %s)" out)
    true
    (has_substring ~sub:"replica 0" out && has_substring ~sub:"replica 1" out);
  Alcotest.(check bool)
    (Printf.sprintf "announces a winner (got: %s)" out)
    true
    (has_substring ~sub:"portfolio: replica" out);
  (* fleet runs rotate per-replica snapshots, not serial ones *)
  Alcotest.(check bool) "replica 0 snapshots" true
    (Spr_core.Checkpoint.V2.snapshot_files ~replica:0 dir <> []);
  Alcotest.(check bool) "replica 1 snapshots" true
    (Spr_core.Checkpoint.V2.snapshot_files ~replica:1 dir <> []);
  Alcotest.(check (list (pair int string))) "no serial snapshots" []
    (Spr_core.Checkpoint.V2.snapshot_files dir);
  (* the meta records the fleet shape for --run-resume *)
  let meta =
    match Spr_util.Persist.read_file (Filename.concat dir "meta") with
    | Ok text -> text
    | Error e -> Alcotest.failf "meta: %s" e
  in
  Alcotest.(check bool) "meta records parallel" true (has_substring ~sub:"parallel 2" meta);
  Alcotest.(check bool) "meta records exchange" true (has_substring ~sub:"exchange best:4" meta);
  Alcotest.(check bool) "meta records scheduler" true
    (has_substring ~sub:"scheduler barrier" meta);
  let status, out = run_cli [ "route"; "--run-resume"; dir ] in
  check_exit_zero "fleet resume" status;
  Alcotest.(check bool)
    (Printf.sprintf "resume rebuilds the fleet (got: %s)" out)
    true
    (has_substring ~sub:"resuming portfolio of 2 replicas" out);
  rmrf dir

(* --trace/--report leave artifacts behind that spr report validates
   against the trace schema and re-renders as the dynamics table. *)
let test_trace_report_artifacts () =
  let trace = Filename.temp_file "spr_cli_trace" ".jsonl" in
  let report = Filename.temp_file "spr_cli_report" ".json" in
  let status, out =
    run_cli
      [ "route"; "--circuit"; "s1"; "--effort"; "quick"; "--seed"; "2";
        "--trace"; trace; "--report"; report ]
  in
  check_exit_zero "traced run" status;
  Alcotest.(check bool)
    (Printf.sprintf "announces the artifacts (got: %s)" out)
    true
    (has_substring ~sub:"trace written to" out && has_substring ~sub:"report written to" out);
  let status, out = run_cli [ "report"; trace; "--check" ] in
  check_exit_zero "spr report --check" status;
  Alcotest.(check bool)
    (Printf.sprintf "schema-valid trace (got: %s)" out)
    true
    (has_substring ~sub:"valid spr-trace-1 trace" out);
  let status, out = run_cli [ "report"; trace ] in
  check_exit_zero "spr report" status;
  Alcotest.(check bool)
    (Printf.sprintf "re-renders the dynamics table (got: %s)" out)
    true
    (has_substring ~sub:"%G-unrt" out);
  (match Spr_util.Persist.read_file report with
  | Error e -> Alcotest.failf "report.json unreadable: %s" e
  | Ok text -> (
    match Spr_obs.Json.parse text with
    | Error e -> Alcotest.failf "report.json does not parse: %s" e
    | Ok j -> (
      match Spr_obs.Report.of_json j with
      | Error e -> Alcotest.failf "report.json does not decode: %s" e
      | Ok _ -> ())));
  Sys.remove trace;
  Sys.remove report

let test_bad_parallel_flags () =
  let status, _ = run_cli [ "route"; "--circuit"; "s1"; "--parallel"; "0" ] in
  (match status with
  | Unix.WEXITED 0 -> Alcotest.fail "--parallel 0 accepted"
  | _ -> ());
  let status, _ =
    run_cli [ "route"; "--circuit"; "s1"; "--parallel"; "2"; "--exchange"; "best:0" ]
  in
  match status with
  | Unix.WEXITED 0 -> Alcotest.fail "--exchange best:0 accepted"
  | _ -> ()

(* SIGINT mid-anneal: the handler finishes the in-flight move, writes a
   final checkpoint, and the process exits 0 with the best-so-far
   layout instead of dying. *)
let test_sigint_writes_resumable_checkpoint () =
  let dir = "cli-sigint" in
  rmrf dir;
  let out_path = Filename.temp_file "spr_cli_sigint" ".out" in
  let out_fd = Unix.openfile out_path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let pid =
    Unix.create_process spr
      [| spr; "route"; "--circuit"; "s1"; "--effort"; "standard"; "--seed"; "2";
         "--run-dir"; dir |]
      Unix.stdin out_fd out_fd
  in
  Unix.close out_fd;
  (* s1 at standard effort anneals for >10s; by 2s the handlers are
     installed and the run is mid-schedule. *)
  Unix.sleepf 2.0;
  Unix.kill pid Sys.sigint;
  let deadline = Unix.gettimeofday () +. 60.0 in
  let rec wait () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if Unix.gettimeofday () > deadline then begin
        Unix.kill pid Sys.sigkill;
        ignore (Unix.waitpid [] pid);
        Alcotest.fail "CLI did not exit within 60s of SIGINT"
      end
      else begin
        Unix.sleepf 0.2;
        wait ()
      end
    | _, status -> status
  in
  let status = wait () in
  let out =
    let ic = open_in_bin out_path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Sys.remove out_path;
    s
  in
  check_exit_zero "interrupted CLI" status;
  Alcotest.(check bool)
    (Printf.sprintf "reports the interruption (got: %s)" out)
    true
    (has_substring ~sub:"interrupted (interrupt)" out);
  let _, loaded = load_run_dir dir in
  Alcotest.(check bool) "final checkpoint present" true (loaded.Spr_core.Checkpoint.V2.seq >= 1);
  rmrf dir

let () =
  Alcotest.run "spr_cli"
    [
      ( "budgets",
        [
          Alcotest.test_case "time budget exits 0 and reports interrupted" `Slow
            test_time_budget_interrupts;
          Alcotest.test_case "move budget interrupts, then resumes to completion" `Slow
            test_move_budget_then_resume;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "two-replica portfolio end to end" `Slow test_parallel_smoke;
          Alcotest.test_case "bad flags rejected" `Quick test_bad_parallel_flags;
        ] );
      ( "obs",
        [
          Alcotest.test_case "--trace/--report artifacts round-trip through spr report" `Slow
            test_trace_report_artifacts;
        ] );
      ( "signals",
        [
          Alcotest.test_case "SIGINT writes a final resumable checkpoint" `Slow
            test_sigint_writes_resumable_checkpoint;
        ] );
    ]
