(* spr — command-line driver for the flow-stage engine: the
   simultaneous place-and-route tool, the sequential baseline, and the
   analytically seeded pipelines between them.

     spr generate --cells 200 --seed 3 > c.blif
     spr route c.blif --tracks 28 --flow sa
     spr route --circuit s1 --flow ap+sa --stage-budget sa=30 --run-dir runs/f
     spr route --circuit s1 --svg die.svg --checkpoint s1.ckpt
     spr route --circuit s1 --obs-endpoints 5 --obs-clock 120
     spr route --circuit s1 --trace s1.jsonl --report s1-report.json
     spr report s1.jsonl
     spr flows -o BENCH_flows.json
     spr min-tracks --circuit bw
     spr dynamics --circuit s1

   The route flag surface is grouped: observability under
   --obs-*/--trace/--report, persistence under --run-*, flow selection
   under --flow/--stage-budget, fleet scheduling under
   --parallel/--exchange/--scheduler/--race-*; [route] below is the
   single place they merge into a Tool.Config. *)

open Cmdliner

let load_netlist ~file ~circuit =
  match file, circuit with
  | Some path, _ -> Spr_netlist.Blif.parse_file path
  | None, Some name -> (
    match Spr_netlist.Circuits.find name with
    | Some spec -> Ok (Spr_netlist.Circuits.make spec)
    | None ->
      Error
        (Printf.sprintf "unknown circuit %s (try: %s)" name
           (String.concat ", "
              (List.map
                 (fun s -> s.Spr_netlist.Circuits.spec_name)
                 Spr_netlist.Circuits.all))))
  | None, None -> Error "provide a BLIF file or --circuit NAME"

let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"BLIF" ~doc:"Input netlist in BLIF format.")

let circuit_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "circuit" ] ~docv:"NAME" ~doc:"Built-in benchmark circuit (s1, cse, ex1, bw, s1a, big529).")

let tracks_arg =
  Arg.(value & opt int 28 & info [ "tracks" ] ~docv:"N" ~doc:"Horizontal tracks per channel.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let scheme_arg =
  let parse s =
    match Spr_arch.Segmentation.scheme_of_string s with
    | Some scheme -> Ok scheme
    | None -> Error (`Msg (Printf.sprintf "bad segmentation %S (full|uniform:<n>|actel|geometric)" s))
  in
  let print ppf s = Format.pp_print_string ppf (Spr_arch.Segmentation.scheme_to_string s) in
  Arg.(
    value
    & opt (conv (parse, print)) Spr_arch.Segmentation.Actel_like
    & info [ "segmentation" ] ~docv:"SCHEME" ~doc:"Channel segmentation scheme.")

let effort_arg =
  let parse s =
    match Spr_experiments.Profiles.effort_of_string s with
    | Some e -> Ok e
    | None -> Error (`Msg "effort is quick|standard|thorough")
  in
  let print ppf = function
    | Spr_experiments.Profiles.Quick -> Format.pp_print_string ppf "quick"
    | Spr_experiments.Profiles.Standard -> Format.pp_print_string ppf "standard"
    | Spr_experiments.Profiles.Thorough -> Format.pp_print_string ppf "thorough"
  in
  Arg.(
    value
    & opt (conv (parse, print)) Spr_experiments.Profiles.Standard
    & info [ "effort" ] ~docv:"LEVEL" ~doc:"Annealing effort: quick, standard or thorough.")

(* --- generate --- *)

let generate cells seed output =
  let nl =
    Spr_netlist.Generator.generate (Spr_netlist.Generator.default ~n_cells:cells) ~seed
  in
  let text = Spr_netlist.Blif.to_string ~model_name:(Printf.sprintf "synth%d" cells) nl in
  (match output with
  | None -> print_string text
  | Some path ->
    let oc = open_out path in
    output_string oc text;
    close_out oc);
  `Ok ()

let generate_cmd =
  let cells =
    Arg.(value & opt int 200 & info [ "cells" ] ~docv:"N" ~doc:"Total cell count.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic MCNC-like circuit as BLIF.")
    Term.(ret (const generate $ cells $ seed_arg $ output))

(* --- route --- *)

let report_sim nl (r : Spr_core.Tool.result) =
  Printf.printf "simultaneous: routed=%b (G=%d D=%d)  critical=%.2f ns  cpu=%.1f s\n"
    r.Spr_core.Tool.fully_routed r.Spr_core.Tool.g r.Spr_core.Tool.d
    r.Spr_core.Tool.critical_delay r.Spr_core.Tool.cpu_seconds;
  let path = Spr_timing.Sta.critical_path r.Spr_core.Tool.sta in
  Printf.printf "critical path: %s\n"
    (String.concat " -> "
       (List.map (fun c -> (Spr_netlist.Netlist.cell nl c).Spr_netlist.Netlist.cell_name) path))

let report_flow ~flow nl (r : Spr_flow.result) =
  List.iter
    (fun s ->
      Printf.printf "  stage %-7s %7.1f s  %s\n" s.Spr_flow.sg_name s.Spr_flow.sg_seconds
        s.Spr_flow.sg_detail)
    r.Spr_flow.f_stages;
  (match r.Spr_flow.f_seed_temperature with
  | Some t -> Printf.printf "  seeded anneal start temperature %.4g\n" t
  | None -> ());
  Printf.printf "flow %-16s routed=%b (G=%d D=%d)  critical=%.2f ns  %.1f s\n" flow
    r.Spr_flow.f_fully_routed r.Spr_flow.f_g r.Spr_flow.f_d r.Spr_flow.f_critical_delay
    (Spr_flow.stage_seconds r);
  let path = Spr_timing.Sta.critical_path r.Spr_flow.f_sta in
  Printf.printf "critical path: %s\n"
    (String.concat " -> "
       (List.map (fun c -> (Spr_netlist.Netlist.cell nl c).Spr_netlist.Netlist.cell_name) path))

(* Layout-facing outputs shared by every flow: stats, SVG, checkpoint,
   ASCII die plot and the worst-endpoints table need only the routed
   state and its STA, whatever produced them. *)
let post_layout nl ~route ~sta ~svg ~checkpoint ~ascii ~stats ~report_k ~clock =
  if stats then
    Format.printf "%a" Spr_route.Route_stats.pp (Spr_route.Route_stats.collect route);
  (match svg with
  | None -> ()
  | Some path ->
    let hot = Spr_render.Die_plot.critical_nets sta route in
    Spr_render.Die_plot.save_svg ~highlight:hot route path;
    Printf.printf "die plot written to %s\n" path);
  (match checkpoint with
  | None -> ()
  | Some path ->
    Spr_core.Checkpoint.save route path;
    Printf.printf "checkpoint written to %s\n" path);
  if ascii then print_string (Spr_render.Die_plot.to_ascii route);
  match report_k with
  | None -> ()
  | Some k ->
    let paths = Spr_timing.Path_report.worst_paths ~k ?clock_period:clock sta in
    Printf.printf "\nworst %d endpoints:\n%s" k (Spr_timing.Path_report.render nl paths)

(* A run directory holds everything needed to continue an interrupted
   run: the design itself, the fabric/config parameters, and the rotated
   v2 snapshots the tool writes as it goes. *)

let meta_file dir = Filename.concat dir "meta"

let design_file dir = Filename.concat dir "design.blif"

(* Snapshots reference nets by id, and net ids come from netlist
   construction order, so resuming must rebuild the exact same netlist.
   A BLIF input is copied into the run dir byte-for-byte (re-parsing
   identical bytes is deterministic); a built-in circuit is recorded by
   name and rebuilt from its spec, because re-parsing a re-serialization
   can permute net ids. *)
type run_meta = {
  m_tracks : int;
  m_scheme : Spr_arch.Segmentation.scheme;
  m_seed : int;
  m_effort : Spr_experiments.Profiles.effort;
  m_parallel : int;
  m_exchange : Spr_anneal.Portfolio.exchange;
  m_scheduler : Spr_core.Tool.Config.scheduler;
  m_flow : string;
  m_circuit : string option;
}

let write_run_dir ~dir ~tracks ~scheme ~seed ~effort ~parallel ~exchange
    ~(scheduler : Spr_core.Tool.Config.scheduler) ~flow ~source nl =
  Spr_util.Persist.ensure_dir dir;
  (match source with
  | `File path ->
    (match Spr_util.Persist.read_file path with
    | Ok text -> Spr_util.Persist.atomic_write (design_file dir) text
    | Error _ ->
      Spr_util.Persist.atomic_write (design_file dir)
        (Spr_netlist.Blif.to_string ~model_name:"run" nl))
  | `Circuit _ ->
    Spr_util.Persist.atomic_write (design_file dir)
      (Spr_netlist.Blif.to_string ~model_name:"run" nl));
  let circuit_line = match source with `Circuit name -> "circuit " ^ name ^ "\n" | `File _ -> "" in
  Spr_util.Persist.atomic_write (meta_file dir)
    (Printf.sprintf
       "spr-run-meta 1\ntracks %d\nscheme %s\nseed %d\neffort %s\nparallel %d\nexchange %s\n\
        scheduler %s\nrace-margin %h\nrace-warmup %d\nrace-every %d\nflow %s\n%s"
       tracks
       (Spr_arch.Segmentation.scheme_to_string scheme)
       seed
       (Spr_experiments.Profiles.effort_to_string effort)
       parallel
       (Spr_anneal.Portfolio.exchange_to_string exchange)
       (Spr_core.Tool.Config.scheduler_to_string scheduler)
       scheduler.race_margin scheduler.race_warmup scheduler.race_every flow circuit_line)

let read_run_meta dir =
  match Spr_util.Persist.read_file (meta_file dir) with
  | Error e -> Error (Printf.sprintf "%s: %s" (meta_file dir) e)
  | Ok text ->
    let fail fmt = Printf.ksprintf (fun m -> Error (meta_file dir ^ ": " ^ m)) fmt in
    let lines =
      String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")
      |> List.map (fun l -> String.split_on_char ' ' (String.trim l))
    in
    (match lines with
    | [ "spr-run-meta"; "1" ] :: fields ->
      let find key =
        List.find_map (function [ k; v ] when k = key -> Some v | _ -> None) fields
      in
      (match find "tracks", find "scheme", find "seed", find "effort" with
      | Some tracks, Some scheme, Some seed, Some effort -> (
        match
          ( int_of_string_opt tracks,
            Spr_arch.Segmentation.scheme_of_string scheme,
            int_of_string_opt seed,
            Spr_experiments.Profiles.effort_of_string effort )
        with
        | Some tracks, Some scheme, Some seed, Some effort -> (
          (* Run dirs written before the portfolio existed have no
             parallel/exchange lines: a fleet of one, no exchange. *)
          let parallel =
            match find "parallel" with
            | None -> Some 1
            | Some p -> int_of_string_opt p
          in
          let exchange =
            match find "exchange" with
            | None -> Some Spr_anneal.Portfolio.Independent
            | Some x -> Result.to_option (Spr_anneal.Portfolio.exchange_of_string x)
          in
          match parallel, exchange with
          | Some parallel, Some exchange -> (
            (* Run dirs written before the flow engine existed carry no
               flow line: the plain simultaneous anneal. Ones written
               before the racing scheduler carry no scheduler lines: the
               barrier. *)
            let flow = Option.value (find "flow") ~default:"sa" in
            let d = Spr_core.Tool.Config.default.parallel.scheduler in
            let kind_sync =
              match find "scheduler" with
              | None -> Ok (`Barrier, true)
              | Some s -> Spr_core.Tool.Config.scheduler_of_string s
            in
            match kind_sync with
            | Error e -> fail "%s" e
            | Ok (kind, race_sync) ->
              let num key of_string default =
                match find key with None -> Some default | Some v -> of_string v
              in
              (match
                 ( num "race-margin" float_of_string_opt d.race_margin,
                   num "race-warmup" int_of_string_opt d.race_warmup,
                   num "race-every" int_of_string_opt d.race_every )
               with
              | Some race_margin, Some race_warmup, Some race_every ->
                Ok
                  {
                    m_tracks = tracks;
                    m_scheme = scheme;
                    m_seed = seed;
                    m_effort = effort;
                    m_parallel = parallel;
                    m_exchange = exchange;
                    m_scheduler =
                      { d with kind; race_sync; race_margin; race_warmup; race_every };
                    m_flow = flow;
                    m_circuit = find "circuit";
                  }
              | _ -> fail "malformed race-* field"))
          | _ -> fail "malformed parallel/exchange field")
        | _ -> fail "malformed field value")
      | _ -> fail "missing tracks/scheme/seed/effort field")
    | _ -> fail "not a version-1 spr run-meta file")

let report_portfolio (p : Spr_core.Tool.portfolio_result) =
  Array.iteri
    (fun k (r : Spr_core.Tool.result) ->
      Printf.printf "  replica %d%s routed=%b (G=%d D=%d)  critical=%.2f ns  cpu=%.1f s\n" k
        (if k = p.Spr_core.Tool.p_best_replica then "*" else " ")
        r.Spr_core.Tool.fully_routed r.Spr_core.Tool.g r.Spr_core.Tool.d
        r.Spr_core.Tool.critical_delay r.Spr_core.Tool.cpu_seconds)
    p.Spr_core.Tool.p_results;
  let kills =
    List.fold_left
      (fun n (r : Spr_anneal.Scheduler.round_record) -> n + List.length r.sr_kills)
      0 p.Spr_core.Tool.p_scheds
  in
  Printf.printf "portfolio: replica %d wins (%d replicas, %d exchange rounds%s, %.1f s wall)\n"
    p.Spr_core.Tool.p_best_replica
    (Array.length p.Spr_core.Tool.p_results)
    (List.length p.Spr_core.Tool.p_exchanges)
    (if kills > 0 then Printf.sprintf ", %d racing kills" kills else "")
    p.Spr_core.Tool.p_wall_seconds

let run_sim ~(config : Spr_core.Tool.config) ?resume ?resume_dir ~selfcheck ~profile arch nl
    ~run_dir ~svg ~checkpoint ~ascii ~stats ~report_k ~clock =
  Spr_core.Tool.install_signal_handlers ();
  let outcome =
    if config.parallel.replicas > 1 then
      match Spr_core.Tool.run_portfolio ~config ?resume_dir arch nl with
      | Error e -> Error e
      | Ok p ->
        report_portfolio p;
        Ok (Spr_core.Tool.best_result p)
    else Spr_core.Tool.run ~config ?resume arch nl
  in
  match outcome with
  | Error e -> Error ("simultaneous flow failed: " ^ Spr_core.Tool.error_to_string e)
  | Ok r ->
    (match r.Spr_core.Tool.status with
    | Spr_core.Tool.Completed -> ()
    | Spr_core.Tool.Interrupted reason ->
      Printf.printf "interrupted (%s): best-so-far layout follows%s\n"
        (Spr_core.Tool.stop_reason_to_string reason)
        (match run_dir with
        | Some dir -> Printf.sprintf "; continue with: spr route --run-resume %s" dir
        | None -> ""));
    report_sim nl r;
    (match config.obs.trace_path with
    | Some path -> Printf.printf "trace written to %s\n" path
    | None -> ());
    (match config.obs.report_path with
    | Some path -> Printf.printf "report written to %s\n" path
    | None -> ());
    if profile then begin
      Format.printf "%a" Spr_core.Profile.pp r.Spr_core.Tool.profile;
      Format.printf "per-temperature phase times:@.%a" Spr_core.Dynamics.pp_phase_series
        r.Spr_core.Tool.dynamics
    end;
    let audit_ok =
      if not selfcheck then true
      else begin
        match Spr_core.Tool.audit_result r with
        | [] ->
          Printf.printf "selfcheck: zero audit findings\n";
          true
        | findings ->
          Printf.printf "selfcheck FAILED:\n%s\n" (Spr_check.Finding.summarize findings);
          false
      end
    in
    post_layout nl ~route:r.Spr_core.Tool.route ~sta:r.Spr_core.Tool.sta ~svg ~checkpoint
      ~ascii ~stats ~report_k ~clock;
    if audit_ok then Ok () else Error "selfcheck reported audit findings"

(* Multi-stage flows go through the flow engine; the classic [--flow sa]
   path stays on [run_sim] above, bit-identical to what it always
   produced. *)
let run_flow ~flow ~(config : Spr_core.Tool.config) ?resume_dir arch nl ~svg ~checkpoint ~ascii
    ~stats ~report_k ~clock =
  Spr_core.Tool.install_signal_handlers ();
  match Spr_flow.run ~config ?resume_dir arch nl with
  | Error e ->
    Error (Printf.sprintf "flow %s failed: %s" flow (Spr_core.Tool.error_to_string e))
  | Ok r ->
    (match r.Spr_flow.f_portfolio with
    | Some p when Array.length p.Spr_core.Tool.p_results > 1 -> report_portfolio p
    | _ -> ());
    report_flow ~flow nl r;
    (match config.obs.trace_path with
    | Some path -> Printf.printf "trace written to %s\n" path
    | None -> ());
    (match config.obs.report_path with
    | Some path when r.Spr_flow.f_tool <> None || r.Spr_flow.f_portfolio <> None ->
      Printf.printf "report written to %s\n" path
    | _ -> ());
    post_layout nl ~route:r.Spr_flow.f_route ~sta:r.Spr_flow.f_sta ~svg ~checkpoint ~ascii
      ~stats ~report_k ~clock;
    Ok ()

(* The single flag→Config mapping: every route invocation (fresh or
   resumed) builds its Tool.Config here and nowhere else. *)
let cli_config config ~time_budget ~max_moves ~run_dir ~snapshot_every ~snapshot_keep
    ~selfcheck ~parallel ~exchange ~scheduler ~route_workers ~route_grain ~trace ~report_file
    ~label =
  let open Spr_core.Tool.Config in
  config
  |> (if selfcheck then with_validate true else Fun.id)
  |> with_budget { time_budget; max_moves; stop_after_accepted = None; poll = None }
  |> with_persistence { run_dir; snapshot_every; snapshot_keep; final_checkpoint = true }
  |> with_replicas ~exchange parallel
  |> with_scheduler scheduler
  |> with_route_workers route_workers
  |> with_route_grain route_grain
  |> with_obs
       {
         record = trace <> None;
         trace_path = trace;
         report_path = report_file;
         label = Some label;
         on_event = None;
       }

let resume_route dir ~time_budget ~max_moves ~snapshot_every ~snapshot_keep ~selfcheck ~profile
    ~svg ~checkpoint ~ascii ~stats ~report_k ~clock ~route_workers ~route_grain ~trace
    ~report_file ~stage_budgets =
  match read_run_meta dir with
  | Error e -> `Error (false, "resume failed: " ^ e)
  | Ok m -> (
    let { m_tracks = tracks; m_scheme = scheme; m_seed = seed; m_effort = effort;
          m_parallel = parallel; m_exchange = exchange; m_scheduler = scheduler;
          m_flow = flow; m_circuit = circuit } = m
    in
    match
      match circuit with
      | Some name -> load_netlist ~file:None ~circuit:(Some name)
      | None -> Spr_netlist.Blif.parse_file (design_file dir)
    with
    | Error e -> `Error (false, "resume failed: " ^ e)
    | Ok nl ->
      let n = Spr_netlist.Netlist.n_cells nl in
      Format.printf "circuit: %a@." Spr_netlist.Netlist.pp_summary nl;
      let arch = Spr_arch.Arch.size_for ~tracks ~hscheme:scheme nl in
      Format.printf "fabric:  %a@." Spr_arch.Arch.pp arch;
      let config =
        cli_config
          (Spr_experiments.Profiles.tool_config ~seed effort ~n)
          ~time_budget ~max_moves ~run_dir:(Some dir) ~snapshot_every ~snapshot_keep ~selfcheck
          ~parallel ~exchange ~scheduler ~route_workers ~route_grain ~trace ~report_file
          ~label:(Option.value circuit ~default:"run")
      in
      if flow <> "sa" then begin
        (* Multi-stage resume: the flow engine reads flow.json to skip
           completed stages and hands an in-flight sa its V2
           snapshots. *)
        let config =
          List.fold_left
            (fun c (stage, b) -> Spr_core.Tool.Config.with_stage_budget stage b c)
            (Spr_core.Tool.Config.with_flow_preset flow config)
            stage_budgets
        in
        Printf.printf "resuming flow %s from %s\n%!" flow dir;
        match
          run_flow ~flow ~config ~resume_dir:dir arch nl ~svg ~checkpoint ~ascii ~stats
            ~report_k ~clock
        with
        | Ok () -> `Ok ()
        | Error e -> `Error (false, e)
      end
      else if parallel > 1 then begin
        (* Fleet resume: each replica finds (or lacks) its own
           snapshots; recorded exchange rounds replay from the run
           directory. *)
        Printf.printf "resuming portfolio of %d replicas from %s\n%!" parallel dir;
        match
          run_sim ~config ~resume_dir:dir ~selfcheck ~profile arch nl ~run_dir:(Some dir) ~svg
            ~checkpoint ~ascii ~stats ~report_k ~clock
        with
        | Ok () -> `Ok ()
        | Error e -> `Error (false, e)
      end
      else (
        match Spr_core.Checkpoint.V2.load_latest nl ~dir with
        | Error e -> `Error (false, Spr_core.Tool.(error_to_string (Resume_failed e)))
        | Ok loaded -> (
          Printf.printf "resuming from %s (snapshot %d)\n%!" loaded.Spr_core.Checkpoint.V2.path
            loaded.Spr_core.Checkpoint.V2.seq;
          match
            run_sim ~config ~resume:loaded ~selfcheck ~profile arch nl ~run_dir:(Some dir) ~svg
              ~checkpoint ~ascii ~stats ~report_k ~clock
          with
          | Ok () -> `Ok ()
          | Error e -> `Error (false, e))))

(* --stage-budget is repeatable: each occurrence is STAGE=SECONDS. *)
let parse_stage_budgets specs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest -> (
      match String.index_opt s '=' with
      | None -> Error (Printf.sprintf "--stage-budget %s: expected STAGE=SECONDS" s)
      | Some i -> (
        let stage = String.sub s 0 i in
        let v = String.sub s (i + 1) (String.length s - i - 1) in
        match float_of_string_opt v with
        | None -> Error (Printf.sprintf "--stage-budget %s: %s is not a number" s v)
        | Some b -> go ((stage, b) :: acc) rest))
  in
  go [] specs

let route file circuit tracks scheme seed effort flow stage_budget_specs selfcheck profile svg
    checkpoint ascii stats report_file endpoints clock trace run_dir resume time_budget
    max_moves snapshot_every snapshot_keep parallel exchange (sched_kind, sched_sync)
    race_margin race_warmup race_every route_workers route_grain =
  let report_k = endpoints in
  let scheduler =
    {
      Spr_core.Tool.Config.kind = sched_kind;
      race_margin;
      race_warmup;
      race_every;
      race_horizon = Spr_core.Tool.Config.default.parallel.scheduler.race_horizon;
      race_sync = sched_sync;
    }
  in
  match parse_stage_budgets stage_budget_specs with
  | Error e -> `Error (false, e)
  | Ok stage_budgets -> (
  if parallel < 1 then `Error (false, "--parallel must be >= 1")
  else if route_workers < 1 then `Error (false, "--route-workers must be >= 1")
  else if route_grain < 1 then `Error (false, "--route-grain must be >= 1")
  else
  match resume with
  | Some dir ->
    if file <> None || circuit <> None then
      `Error (false, "--run-resume continues a saved run; do not also give a design")
    else
      resume_route dir ~time_budget ~max_moves ~snapshot_every ~snapshot_keep ~selfcheck
        ~profile ~svg ~checkpoint ~ascii ~stats ~report_k ~clock ~route_workers ~route_grain
        ~trace ~report_file ~stage_budgets
  | None -> (
    match load_netlist ~file ~circuit with
    | Error e -> `Error (false, e)
    | Ok nl ->
      let n = Spr_netlist.Netlist.n_cells nl in
      Format.printf "circuit: %a@." Spr_netlist.Netlist.pp_summary nl;
      let arch = Spr_arch.Arch.size_for ~tracks ~hscheme:scheme nl in
      Format.printf "fabric:  %a@." Spr_arch.Arch.pp arch;
      (match run_dir with
      | Some dir ->
        let source =
          match file, circuit with
          | Some path, _ -> `File path
          | None, Some name -> `Circuit name
          | None, None -> assert false (* load_netlist succeeded *)
        in
        write_run_dir ~dir ~tracks ~scheme ~seed ~effort ~parallel ~exchange ~scheduler ~flow
          ~source nl
      | None -> ());
      let errors = ref [] in
      let note = function Ok () -> () | Error e -> errors := e :: !errors in
      let label =
        match circuit, file with
        | Some name, _ -> name
        | None, Some path -> Filename.remove_extension (Filename.basename path)
        | None, None -> "run"
      in
      let base_config () =
        cli_config
          (Spr_experiments.Profiles.tool_config ~seed effort ~n)
          ~time_budget ~max_moves ~run_dir ~snapshot_every ~snapshot_keep ~selfcheck ~parallel
          ~exchange ~scheduler ~route_workers ~route_grain ~trace ~report_file ~label
      in
      (match flow with
      | "sa" ->
        (* The classic path. A --stage-budget sa=S here is just the run's
           time budget under another spelling. *)
        let config =
          match time_budget, List.assoc_opt "sa" stage_budgets with
          | None, Some b -> Spr_core.Tool.Config.with_time_budget b (base_config ())
          | _ -> base_config ()
        in
        note
          (run_sim ~config ~selfcheck ~profile arch nl ~run_dir ~svg ~checkpoint ~ascii ~stats
             ~report_k ~clock)
      | preset ->
        let config =
          List.fold_left
            (fun c (stage, b) -> Spr_core.Tool.Config.with_stage_budget stage b c)
            (Spr_core.Tool.Config.with_flow_preset preset (base_config ()))
            stage_budgets
        in
        note
          (run_flow ~flow:preset ~config arch nl ~svg ~checkpoint ~ascii ~stats ~report_k
             ~clock));
      (match !errors with
      | [] -> `Ok ()
      | errs -> `Error (false, String.concat "\n" (List.rev errs)))))

let route_cmd =
  let obs_docs = "OBSERVABILITY OPTIONS" in
  let run_docs = "RUN PERSISTENCE OPTIONS" in
  let sched_docs = "FLEET SCHEDULING OPTIONS" in
  let flow =
    Arg.(value & opt string "sa"
         & info [ "flow" ] ~docv:"FLOW"
             ~doc:"Flow preset: $(b,sa) (the simultaneous anneal), $(b,ap+sa) (analytical seed \
                   placement, then the anneal at reduced temperature), $(b,ap+greedy+route), \
                   $(b,seq) (the sequential baseline), or any +-joined chain of stages \
                   (ap, sa, greedy, route, sta).")
  in
  let stage_budget =
    Arg.(value & opt_all string []
         & info [ "stage-budget" ] ~docv:"STAGE=SECONDS"
             ~doc:"Wall-clock budget for one flow stage (repeatable), e.g. --stage-budget ap=5 \
                   --stage-budget sa=60.")
  in
  let svg =
    Arg.(value & opt (some string) None
         & info [ "svg" ] ~docv:"FILE" ~doc:"Write a die plot (critical path highlighted).")
  in
  let checkpoint =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"FILE" ~doc:"Save the layout for later reload/ECO.")
  in
  let ascii =
    Arg.(value & flag & info [ "ascii" ] ~doc:"Print an ASCII die map and channel utilization.")
  in
  let stats =
    Arg.(value & flag
         & info [ "obs-stats" ] ~docs:obs_docs
             ~doc:"Print wirelength, antifuse and utilization statistics.")
  in
  let report_arg =
    Arg.(value & opt (some string) None
         & info [ "report" ] ~docv:"FILE" ~docs:obs_docs
             ~doc:"Write the unified run report (report.json, machine twin of the ASCII \
                   tables) to $(docv).")
  in
  let endpoints =
    Arg.(value & opt (some int) None
         & info [ "obs-endpoints" ] ~docv:"K" ~docs:obs_docs
             ~doc:"Print the K worst timing endpoints.")
  in
  let clock =
    Arg.(value & opt (some float) None
         & info [ "obs-clock" ] ~docv:"NS" ~docs:obs_docs
             ~doc:"Clock period for slack in the timing report.")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE" ~docs:obs_docs
             ~doc:"Record a schema-versioned JSONL event trace (spans, per-temperature \
                   dynamics, metrics) to $(docv); re-render it with $(b,spr report).")
  in
  let selfcheck =
    Arg.(value & flag
         & info [ "selfcheck" ]
             ~doc:"Audit the incremental state against from-scratch recomputation during and \
                   after the run (placement bijection, routing mirrors, STA diff).")
  in
  let profile =
    Arg.(value & flag
         & info [ "obs-profile" ] ~docs:obs_docs
             ~doc:"Print the per-phase move-pipeline breakdown (propose, rip-up, reroute, \
                   retime, decide) and per-temperature phase times after the run.")
  in
  let run_dir =
    Arg.(value & opt (some string) None
         & info [ "run-dir" ] ~docv:"DIR" ~docs:run_docs
             ~doc:"Write crash-safe resumable snapshots (and the design) into $(docv) as the \
                   run progresses.")
  in
  let resume =
    Arg.(value & opt (some dir) None
         & info [ "run-resume" ] ~docv:"DIR" ~docs:run_docs
             ~doc:"Continue an interrupted run from the newest good snapshot in $(docv).")
  in
  let time_budget =
    Arg.(value & opt (some float) None
         & info [ "time-budget" ] ~docv:"SECS"
             ~doc:"Stop gracefully after $(docv) wall seconds and keep the best layout so far.")
  in
  let max_moves =
    Arg.(value & opt (some int) None
         & info [ "max-moves" ] ~docv:"N"
             ~doc:"Stop gracefully after $(docv) annealing moves (cumulative across resumes).")
  in
  let snapshot_every =
    Arg.(value & opt int 1
         & info [ "run-snapshot-every" ] ~docv:"N" ~docs:run_docs
             ~doc:"With --run-dir, snapshot every $(docv) temperature boundaries.")
  in
  let snapshot_keep =
    Arg.(value & opt int 3
         & info [ "run-snapshot-keep" ] ~docv:"K" ~docs:run_docs
             ~doc:"With --run-dir, keep the newest $(docv) snapshots.")
  in
  let parallel =
    Arg.(value & opt int 1
         & info [ "parallel" ] ~docv:"K"
             ~doc:"Anneal $(docv) independent replicas in parallel (one per domain) and keep \
                   the best result. $(docv)=1 is the plain serial run.")
  in
  let route_workers =
    Arg.(value & opt int 1
         & info [ "route-workers" ] ~docv:"N"
             ~doc:"Reroute dirty nets on $(docv) worker domains per replica (split across \
                   replicas when --parallel > 1). Results are bit-identical to the serial \
                   router at any $(docv); this is purely a throughput knob.")
  in
  let route_grain =
    Arg.(value & opt int 8
         & info [ "route-grain" ] ~docv:"G"
             ~doc:"Dispatch reroute batches to workers in chunks of $(docv) nets.")
  in
  let exchange =
    let parse s =
      match Spr_anneal.Portfolio.exchange_of_string s with
      | Ok x -> Ok x
      | Error e -> Error (`Msg e)
    in
    let print ppf x = Format.pp_print_string ppf (Spr_anneal.Portfolio.exchange_to_string x) in
    Arg.(
      value
      & opt (conv (parse, print)) Spr_anneal.Portfolio.Independent
      & info [ "exchange" ] ~docv:"POLICY" ~docs:sched_docs
          ~doc:"Portfolio exchange policy: $(b,independent), or $(b,best:N) to broadcast the \
                portfolio-best layout to lagging replicas every N temperature boundaries \
                ($(b,barrier) scheduler only).")
  in
  let scheduler =
    let parse s =
      match Spr_core.Tool.Config.scheduler_of_string s with
      | Ok v -> Ok v
      | Error e -> Error (`Msg e)
    in
    let print ppf (kind, sync) =
      Format.pp_print_string ppf
        (match kind with
        | `Barrier -> "barrier"
        | `Racing -> if sync then "racing" else "racing:free")
    in
    Arg.(
      value
      & opt (conv (parse, print)) (`Barrier, true)
      & info [ "scheduler" ] ~docv:"POLICY" ~docs:sched_docs
          ~doc:"Replica scheduler for $(b,--parallel) fleets: $(b,barrier) (every replica runs \
                to completion, coordinated only by $(b,--exchange)), $(b,racing) (fit an online \
                predictor on each replica's annealing dynamics and early-kill replicas whose \
                predicted final quality trails the fleet leader, reallocating their domains to \
                perturbed forks of the leader; deterministic and resumable), or \
                $(b,racing:free) (asynchronous racing — no rendezvous, faster, but not \
                bit-reproducible).")
  in
  let race_margin =
    Arg.(value & opt float 1.0
         & info [ "race-margin" ] ~docv:"NETS" ~docs:sched_docs
             ~doc:"Racing kill threshold, in unrouted-net units: a replica is killed only when \
                   its predicted final quality trails the leader's by more than $(docv) plus \
                   both predictions' uncertainties.")
  in
  let race_warmup =
    Arg.(value & opt int 10
         & info [ "race-warmup" ] ~docv:"N" ~docs:sched_docs
             ~doc:"Temperature steps before the first racing decision round.")
  in
  let race_every =
    Arg.(value & opt int 5
         & info [ "race-every" ] ~docv:"N" ~docs:sched_docs
             ~doc:"Temperature steps between racing decision rounds.")
  in
  Cmd.v
    (Cmd.info "route" ~doc:"Place and route a circuit on a row-based fabric.")
    Term.(
      ret
        (const route $ file_arg $ circuit_arg $ tracks_arg $ scheme_arg $ seed_arg $ effort_arg
        $ flow $ stage_budget $ selfcheck $ profile $ svg $ checkpoint $ ascii
        $ stats $ report_arg $ endpoints $ clock $ trace
        $ run_dir $ resume $ time_budget $ max_moves
        $ snapshot_every $ snapshot_keep $ parallel $ exchange $ scheduler $ race_margin
        $ race_warmup $ race_every $ route_workers $ route_grain))

(* --- report: re-render a stored trace --- *)

let report_trace trace_file check =
  match Spr_obs.Trace.of_file trace_file with
  | Error e -> `Error (false, e)
  | Ok events -> (
    match Spr_obs.Trace.validate events with
    | Error e -> `Error (false, Printf.sprintf "%s: %s" trace_file e)
    | Ok () ->
      if check then begin
        Printf.printf "%s: valid %s trace (%d events)\n" trace_file
          Spr_obs.Trace.schema_version (List.length events);
        `Ok ()
      end
      else begin
        let open Spr_obs.Trace in
        List.iter
          (fun e ->
            match e.ev with
            | Run_start { label; seed; replicas; n_cells; n_nets } ->
              Printf.printf "run %s: seed=%d replicas=%d cells=%d nets=%d\n" label seed
                replicas n_cells n_nets
            | _ -> ())
          events;
        let replicas =
          List.sort_uniq compare
            (List.filter_map
               (fun e -> match e.ev with Temp _ -> Some e.ev_replica | _ -> None)
               events)
        in
        let many = match replicas with [] | [ _ ] -> false | _ -> true in
        List.iter
          (fun k ->
            let rows =
              List.filter_map
                (fun e ->
                  match e.ev with Temp row when e.ev_replica = k -> Some row | _ -> None)
                events
            in
            if many then Printf.printf "replica %d:\n" k;
            Format.printf "%a" Spr_obs.Report.render_dynamics rows)
          replicas;
        List.iter
          (fun e ->
            match e.ev with
            | Exchange { round; from_replica; metric } ->
              Printf.printf "exchange round %d: replica %d leads (metric %.4g)\n" round
                from_replica metric
            | Replica_end { status; g; d; delay_ns; best_cost } when many ->
              Printf.printf "replica %d: %s  G=%d D=%d  critical=%.2f ns  best-cost=%.4g\n"
                e.ev_replica status g d delay_ns best_cost
            | Run_end { status; g; d; delay_ns; best_cost; wall_seconds } ->
              Printf.printf "run %s: G=%d D=%d  critical=%.2f ns  best-cost=%.4g  wall=%.1f s\n"
                status g d delay_ns best_cost wall_seconds
            | _ -> ())
          events;
        `Ok ()
      end)

let report_cmd =
  let trace_file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"TRACE" ~doc:"JSONL trace written by spr route --trace.")
  in
  let check =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Only validate the trace against the schema; print a one-line verdict.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Validate a stored JSONL trace and re-render its dynamics tables (Figure 6).")
    Term.(ret (const report_trace $ trace_file $ check))

(* --- selfcheck (property-based differential testing) --- *)

let selfcheck seeds n_ops cells tracks =
  if n_ops < 0 then `Error (false, "--ops must be >= 0")
  else if cells < 2 || tracks < 1 then `Error (false, "--cells must be >= 2 and --tracks >= 1")
  else begin
  let spec = Spr_check.Spr_ops.spec ~n_cells:cells ~tracks () in
  let seeds = if seeds = [] then [ 1; 2; 3; 4; 5 ] else seeds in
  Printf.printf "property: %d seed(s) x %d random ops on a %d-cell circuit (%d tracks)\n%!"
    (List.length seeds) n_ops cells tracks;
  match Spr_check.Prop.run ~seeds ~n_ops spec with
  | Ok () ->
    Printf.printf "selfcheck passed: every audit clean after every op\n";
    `Ok ()
  | Error f -> `Error (false, Spr_check.Prop.failure_to_string spec f)
  end

let selfcheck_cmd =
  let seeds =
    Arg.(value & opt_all int []
         & info [ "seed" ] ~docv:"N" ~doc:"Seed to test (repeatable; default 1-5).")
  in
  let ops =
    Arg.(value & opt int 60 & info [ "ops" ] ~docv:"N" ~doc:"Random operations per seed.")
  in
  let cells =
    Arg.(value & opt int 44 & info [ "cells" ] ~docv:"N" ~doc:"Synthetic circuit size.")
  in
  let tracks =
    Arg.(value & opt int 14 & info [ "tracks" ] ~docv:"N" ~doc:"Horizontal tracks per channel.")
  in
  Cmd.v
    (Cmd.info "selfcheck"
       ~doc:"Property-based differential test: random op sequences against the full-state \
             auditors, with automatic shrinking of failures.")
    Term.(ret (const selfcheck $ seeds $ ops $ cells $ tracks))

(* --- min-tracks --- *)

let min_tracks circuit seed =
  match circuit with
  | None -> `Error (false, "provide --circuit NAME")
  | Some name -> (
    match Spr_netlist.Circuits.find name with
    | None -> `Error (false, "unknown circuit " ^ name)
    | Some spec ->
      let row =
        Spr_experiments.Wirability_table.run_circuit ~effort:Spr_experiments.Profiles.Quick
          ~seed spec
      in
      print_string (Spr_experiments.Wirability_table.render [ row ]);
      `Ok ())

let min_tracks_cmd =
  Cmd.v
    (Cmd.info "min-tracks" ~doc:"Find the minimum tracks/channel for 100% wirability (Table 2).")
    Term.(ret (const min_tracks $ circuit_arg $ seed_arg))

(* --- dynamics --- *)

let dynamics circuit seed effort =
  let name = match circuit with Some c -> c | None -> "s1" in
  match Spr_netlist.Circuits.find name with
  | None -> `Error (false, "unknown circuit " ^ name)
  | Some _ ->
    let t = Spr_experiments.Dynamics_fig.run ~effort ~seed ~circuit:name () in
    print_string (Spr_experiments.Dynamics_fig.render t);
    `Ok ()

(* --- partition --- *)

let partition file circuit k seed =
  match load_netlist ~file ~circuit with
  | Error e -> `Error (false, e)
  | Ok nl ->
    let rng = Spr_util.Rng.create seed in
    let parts = Spr_partition.Multi_chip.kway ~rng ~k nl in
    let split = Spr_partition.Multi_chip.split nl ~parts ~n_parts:k in
    Format.printf "design: %a@." Spr_netlist.Netlist.pp_summary nl;
    Printf.printf "%d-way partition: %d cut nets, %d pads added\n" k
      split.Spr_partition.Multi_chip.cut_nets split.Spr_partition.Multi_chip.pads_added;
    Array.iteri
      (fun i piece ->
        Format.printf "chip %d: %a@." i Spr_netlist.Netlist.pp_summary
          piece.Spr_partition.Multi_chip.netlist)
      split.Spr_partition.Multi_chip.pieces;
    `Ok ()

let partition_cmd =
  let k =
    Arg.(value & opt int 2 & info [ "k" ] ~docv:"K" ~doc:"Number of chips (a power of two).")
  in
  Cmd.v
    (Cmd.info "partition"
       ~doc:"FM-partition a design across multiple FPGAs and report the cut.")
    Term.(ret (const partition $ file_arg $ circuit_arg $ k $ seed_arg))

let stats_nl file circuit =
  match load_netlist ~file ~circuit with
  | Error e -> `Error (false, e)
  | Ok nl -> (
    match Spr_netlist.Netlist_stats.collect nl with
    | Error e -> `Error (false, e)
    | Ok stats ->
      Format.printf "%a" Spr_netlist.Netlist_stats.pp stats;
      `Ok ())

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"Print structural statistics of a circuit.")
    Term.(ret (const stats_nl $ file_arg $ circuit_arg))

let dynamics_cmd =
  Cmd.v
    (Cmd.info "dynamics" ~doc:"Trace the annealing dynamics per temperature (Figure 6).")
    Term.(ret (const dynamics $ circuit_arg $ seed_arg $ effort_arg))

(* --- serve / submit / jobs: the persistent P&R job service --- *)

let state_dir_arg =
  Arg.(
    value
    & opt string ".spr-serve"
    & info [ "state-dir" ] ~docv:"DIR"
        ~doc:"Service state directory: job records, run directories, snapshots. Everything the \
              daemon needs to recover after a crash lives here.")

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path (default $(b,STATE-DIR/serve.sock)).")

let serve state_dir socket workers max_queue job_timeout kill_grace drain_grace =
  if workers < 1 then `Error (false, "--workers must be >= 1")
  else if max_queue < 1 then `Error (false, "--max-queue must be >= 1")
  else begin
    Spr_serve.Daemon.run
      {
        Spr_serve.Daemon.state_dir;
        socket_path = socket;
        max_workers = workers;
        max_queue;
        default_time_budget = job_timeout;
        kill_grace;
        drain_grace;
        timeout_slack = 5.0;
      };
    `Ok ()
  end

let serve_cmd =
  let workers =
    Arg.(value & opt int 2
         & info [ "workers" ] ~docv:"N" ~doc:"Concurrent worker processes.")
  in
  let max_queue =
    Arg.(value & opt int 16
         & info [ "max-queue" ] ~docv:"N"
             ~doc:"Queued-job bound; submissions beyond it are rejected with a suggested backoff.")
  in
  let job_timeout =
    Arg.(value & opt (some float) None
         & info [ "job-timeout" ] ~docv:"SECONDS"
             ~doc:"Default wall-clock budget for jobs that do not set one. The worker stops \
                   itself gracefully at the budget; the daemon adds a hard backstop.")
  in
  let kill_grace =
    Arg.(value & opt float 5.0
         & info [ "kill-grace" ] ~docv:"SECONDS"
             ~doc:"Grace between SIGTERM and SIGKILL when stopping a worker.")
  in
  let drain_grace =
    Arg.(value & opt float 10.0
         & info [ "drain-grace" ] ~docv:"SECONDS"
             ~doc:"How long a SIGTERM drain waits for workers to checkpoint before killing them.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the fault-tolerant place-and-route job daemon. Jobs survive daemon crashes: \
             on restart, interrupted runs resume from their snapshots bit-identically.")
    Term.(
      ret
        (const serve $ state_dir_arg $ socket_arg $ workers $ max_queue $ job_timeout
        $ kill_grace $ drain_grace))

let require_socket socket =
  match socket with
  | Some s -> Ok s
  | None ->
    if Sys.file_exists (Filename.concat ".spr-serve" "serve.sock") then
      Ok (Filename.concat ".spr-serve" "serve.sock")
    else Error "provide --socket PATH (no ./.spr-serve/serve.sock found)"

let submit file circuit tracks scheme seed effort flow parallel exchange scheduler time_budget
    max_moves socket quiet =
  match require_socket socket with
  | Error e -> `Error (false, e)
  | Ok socket -> (
    let label =
      match circuit, file with
      | Some name, _ -> name
      | None, Some path -> Filename.remove_extension (Filename.basename path)
      | None, None -> "job"
    in
    let blif =
      match file with
      | None -> Ok None
      | Some path -> (
        match Spr_util.Persist.read_file path with
        | Ok text -> Ok (Some text)
        | Error e -> Error e)
    in
    match blif with
    | Error e -> `Error (false, e)
    | Ok blif -> (
      let spec =
        {
          Spr_serve.Job.label;
          circuit;
          blif;
          tracks;
          scheme = Spr_arch.Segmentation.scheme_to_string scheme;
          seed;
          effort = Spr_experiments.Profiles.effort_to_string effort;
          flow;
          replicas = parallel;
          exchange;
          scheduler;
          time_budget;
          max_moves;
        }
      in
      let on_event ev =
        if not quiet then begin
          let open Spr_obs.Trace in
          match ev.ev with
          | Exchange { round; from_replica; metric } ->
            Printf.printf "exchange round %d: replica %d leads (metric %.4g)\n%!" round
              from_replica metric
          | Replica_end { status; g; d; delay_ns; _ } ->
            Printf.printf "replica %d: %s  G=%d D=%d  critical=%.2f ns\n%!" ev.ev_replica
              status g d delay_ns
          | _ -> ()
        end
      in
      match Spr_serve.Client.open_submit ~socket spec with
      | Error (`Rejected (Spr_serve.Protocol.Overloaded { queued; backoff_s })) ->
        `Error
          ( false,
            Printf.sprintf "rejected: %d jobs queued; retry in ~%.0f s" queued backoff_s )
      | Error (`Rejected Spr_serve.Protocol.Draining) ->
        `Error (false, "rejected: daemon is draining")
      | Error (`Rejected (Spr_serve.Protocol.Invalid msg)) ->
        `Error (false, "rejected: " ^ msg)
      | Error (`Error e) -> `Error (false, e)
      | Ok (fd, id) -> (
        Printf.printf "accepted as %s\n%!" id;
        match Spr_serve.Client.await ~on_event fd with
        | Ok (Spr_serve.Protocol.Job_done { status; _ }) ->
          Printf.printf "%s: %s\n" id status;
          `Ok ()
        | Ok (Spr_serve.Protocol.Job_failed { error; _ }) ->
          `Error (false, Printf.sprintf "%s failed: %s" id error)
        | Ok (Spr_serve.Protocol.Job_parked { message; _ }) ->
          `Error (false, Printf.sprintf "%s parked: %s" id message)
        | Ok (Spr_serve.Protocol.Job_cancelled _) ->
          `Error (false, Printf.sprintf "%s cancelled" id)
        | Ok _ -> `Error (false, "unexpected terminal reply")
        | Error e -> `Error (false, e))))

let submit_cmd =
  let parallel =
    Arg.(value & opt int 1
         & info [ "parallel" ] ~docv:"K" ~doc:"Portfolio width (annealing replicas).")
  in
  let exchange =
    Arg.(value & opt string "independent"
         & info [ "exchange" ] ~docv:"POLICY"
             ~doc:"Portfolio exchange policy: $(b,independent) or $(b,best:N).")
  in
  let scheduler =
    Arg.(value & opt string "barrier"
         & info [ "scheduler" ] ~docv:"SCHED"
             ~doc:"Fleet scheduler: $(b,barrier), $(b,racing), or $(b,racing:free).")
  in
  let time_budget =
    Arg.(value & opt (some float) None
         & info [ "time-budget" ] ~docv:"SECONDS" ~doc:"Wall-clock budget for the run.")
  in
  let max_moves =
    Arg.(value & opt (some int) None
         & info [ "max-moves" ] ~docv:"N" ~doc:"Move budget for the run.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress streamed progress events.")
  in
  let flow =
    Arg.(value & opt string "sa"
         & info [ "flow" ] ~docv:"FLOW"
             ~doc:"Flow preset the worker runs: $(b,sa), $(b,ap+sa), $(b,ap+greedy+route), \
                   $(b,seq), or any +-joined stage chain.")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:"Submit a place-and-route job to a running $(b,spr serve) daemon and stream its \
             progress until it finishes.")
    Term.(
      ret
        (const submit $ file_arg $ circuit_arg $ tracks_arg $ scheme_arg $ seed_arg $ effort_arg
        $ flow $ parallel $ exchange $ scheduler $ time_budget $ max_moves $ socket_arg $ quiet))

let jobs_cli socket cancel =
  match require_socket socket with
  | Error e -> `Error (false, e)
  | Ok socket -> (
    match cancel with
    | Some id -> (
      match Spr_serve.Client.cancel ~socket id with
      | Ok (Spr_serve.Protocol.Job_cancelled id) ->
        Printf.printf "%s: cancellation requested\n" id;
        `Ok ()
      | Ok (Spr_serve.Protocol.Error e) -> `Error (false, e)
      | Ok _ -> `Error (false, "unexpected reply")
      | Error e -> `Error (false, e))
    | None -> (
      match Spr_serve.Client.jobs ~socket with
      | Error e -> `Error (false, e)
      | Ok [] ->
        Printf.printf "no jobs\n";
        `Ok ()
      | Ok rows ->
        List.iter
          (fun r ->
            Printf.printf "%-14s %-12s %s\n" r.Spr_serve.Protocol.row_id
              r.Spr_serve.Protocol.row_label r.Spr_serve.Protocol.row_state)
          rows;
        `Ok ()))

(* --- flows: sweep flow presets over circuits and seeds --- *)

let flows_cli flows circuits seeds effort tracks output =
  let flows =
    if flows = [] then Spr_experiments.Flows_sweep.default_flows else flows
  in
  let circuits =
    if circuits = [] then Spr_experiments.Flows_sweep.default_circuits else circuits
  in
  let seeds = if seeds = [] then [ 1; 2 ] else seeds in
  match
    List.filter_map
      (fun f -> match Spr_flow.stages_of_preset f with Ok _ -> None | Error e -> Some e)
      flows
  with
  | e :: _ -> `Error (false, e)
  | [] ->
    let rows = Spr_experiments.Flows_sweep.run ~effort ~tracks ~flows ~circuits ~seeds () in
    print_string (Spr_experiments.Flows_sweep.render rows);
    let cmp = Spr_experiments.Flows_sweep.compare_seeded rows in
    if cmp.Spr_experiments.Flows_sweep.cells > 0 then
      Printf.printf
        "ap+sa vs sa over %d circuit-seed cells: %.2fx the annealing moves, quality held on %d\n"
        cmp.Spr_experiments.Flows_sweep.cells cmp.Spr_experiments.Flows_sweep.move_ratio
        cmp.Spr_experiments.Flows_sweep.quality_held;
    Spr_util.Persist.atomic_write output
      (Spr_obs.Json.to_string ~indent:true
         (Spr_experiments.Flows_sweep.to_json ~effort rows)
      ^ "\n");
    Printf.printf "flow sweep written to %s\n" output;
    `Ok ()

let flows_cmd =
  let flows =
    Arg.(value & opt_all string []
         & info [ "flow" ] ~docv:"FLOW"
             ~doc:"Flow preset to sweep (repeatable); default: every registered preset.")
  in
  let circuits =
    Arg.(value & opt_all string []
         & info [ "circuit" ] ~docv:"NAME"
             ~doc:"Benchmark circuit to sweep (repeatable); default: s1 and bw.")
  in
  let seeds =
    Arg.(value & opt_all int []
         & info [ "seed" ] ~docv:"N" ~doc:"Seed to sweep (repeatable); default: 1 and 2.")
  in
  let output =
    Arg.(value & opt string "BENCH_flows.json"
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"JSON output path.")
  in
  Cmd.v
    (Cmd.info "flows"
       ~doc:"Sweep flow presets across circuits and seeds, comparing the analytically seeded \
             anneal against the cold-start one, and write the table as JSON.")
    Term.(ret (const flows_cli $ flows $ circuits $ seeds $ effort_arg $ tracks_arg $ output))

let jobs_cmd =
  let cancel =
    Arg.(value & opt (some string) None
         & info [ "cancel" ] ~docv:"ID" ~doc:"Cancel the given job instead of listing.")
  in
  Cmd.v
    (Cmd.info "jobs" ~doc:"List (or cancel) jobs on a running $(b,spr serve) daemon.")
    Term.(ret (const jobs_cli $ socket_arg $ cancel))

let () =
  let info =
    Cmd.info "spr" ~version:"1.0.0"
      ~doc:"Performance-driven simultaneous place and route for row-based FPGAs (DAC 1994)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd;
            route_cmd;
            report_cmd;
            min_tracks_cmd;
            dynamics_cmd;
            partition_cmd;
            stats_cmd;
            selfcheck_cmd;
            serve_cmd;
            submit_cmd;
            jobs_cmd;
            flows_cmd;
          ]))
