(* Multi-FPGA scenario (paper §2.2): a design too large for one device is
   FM-bipartitioned, each piece gets cut pads, and each piece is placed
   and routed independently by the simultaneous tool.

     dune exec examples/multi_chip.exe -- [circuit] *)

module Mc = Spr_partition.Multi_chip
module Fm = Spr_partition.Fm
module Tool = Spr_core.Tool

let () =
  let circuit = if Array.length Sys.argv > 1 then Sys.argv.(1) else "big529" in
  let nl = Spr_netlist.Circuits.make_by_name circuit in
  Format.printf "design: %a@." Spr_netlist.Netlist.pp_summary nl;
  let rng = Spr_util.Rng.create 11 in
  let split, fm = Mc.bipartition_and_split ~rng nl in
  Printf.printf "FM bipartition: %d cut nets after %d passes; %d pads added\n%!"
    fm.Fm.cut_nets fm.Fm.passes split.Mc.pads_added;
  Array.iteri
    (fun i piece ->
      Format.printf "-- chip %d: %a@." i Spr_netlist.Netlist.pp_summary piece.Mc.netlist;
      let arch = Spr_arch.Arch.size_for ~tracks:30 piece.Mc.netlist in
      let n = Spr_netlist.Netlist.n_cells piece.Mc.netlist in
      let config =
        Tool.Config.(
          default
          |> with_seed (3 + i)
          |> with_anneal
               {
                 (Spr_anneal.Engine.default_config ~n) with
                 Spr_anneal.Engine.moves_per_temp = max 400 (5 * n);
                 max_temperatures = 90;
               })
      in
      let r = Tool.run_exn ~config arch piece.Mc.netlist in
      Printf.printf "   routed=%b (G=%d D=%d)  critical=%.2f ns  cpu=%.1f s\n%!"
        r.Tool.fully_routed r.Tool.g r.Tool.d r.Tool.critical_delay r.Tool.cpu_seconds)
    split.Mc.pieces;
  Printf.printf
    "each chip routed on a fabric roughly half the monolithic one; the %d cut nets become \
     chip-to-chip wires\n"
    split.Mc.cut_nets
