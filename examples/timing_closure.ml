(* Timing closure scenario: the same circuit laid out by the sequential
   baseline and by the simultaneous tool, with per-path detail — the
   workload of the paper's Table 1, on one circuit, with the critical
   paths shown.

     dune exec examples/timing_closure.exe -- [circuit] [tracks]

   circuit defaults to "cse"; tracks to 32 (generous enough for the
   sequential flow to route 100%, so the delay comparison is fair). *)

let pp_path nl sta label =
  let path = Spr_timing.Sta.critical_path sta in
  Printf.printf "%s critical path (%d cells):\n  %s\n" label (List.length path)
    (String.concat " -> "
       (List.map
          (fun c -> (Spr_netlist.Netlist.cell nl c).Spr_netlist.Netlist.cell_name)
          path))

let () =
  let circuit = if Array.length Sys.argv > 1 then Sys.argv.(1) else "cse" in
  let tracks = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 32 in
  let nl = Spr_netlist.Circuits.make_by_name circuit in
  Format.printf "circuit %s: %a@." circuit Spr_netlist.Netlist.pp_summary nl;
  let arch = Spr_arch.Arch.size_for ~tracks nl in
  Format.printf "fabric: %a@." Spr_arch.Arch.pp arch;

  Printf.printf "\n-- sequential place-then-route (TimberWolf-style baseline) --\n%!";
  let seq =
    Spr_flow.run_exn
      ~config:Spr_core.Tool.Config.(default |> with_flow_preset "seq")
      arch nl
  in
  Printf.printf "routed: %b   critical delay: %.2f ns   wirelength: %.0f   cpu: %.1f s\n"
    seq.Spr_flow.f_fully_routed seq.Spr_flow.f_critical_delay
    (Spr_seq.Seq_place.wirelength seq.Spr_flow.f_place)
    (Spr_flow.stage_seconds seq);
  pp_path nl seq.Spr_flow.f_sta "sequential";

  Printf.printf "\n-- simultaneous place and route (this paper) --\n%!";
  let sim = Spr_core.Tool.run_exn arch nl in
  Printf.printf "routed: %b   critical delay: %.2f ns   cpu: %.1f s\n"
    sim.Spr_core.Tool.fully_routed sim.Spr_core.Tool.critical_delay
    sim.Spr_core.Tool.cpu_seconds;
  pp_path nl sim.Spr_core.Tool.sta "simultaneous";

  if seq.Spr_flow.f_fully_routed && sim.Spr_core.Tool.fully_routed then
    Printf.printf "\nworst-case timing improvement: %.0f%% (paper reports 16-28%%)\n"
      (100.0
      *. (seq.Spr_flow.f_critical_delay -. sim.Spr_core.Tool.critical_delay)
      /. seq.Spr_flow.f_critical_delay)
  else
    Printf.printf
      "\nnote: a flow failed to route 100%% at %d tracks; rerun with more tracks for a fair \
       delay comparison\n"
      tracks
